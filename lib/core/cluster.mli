(** The simulated ResilientDB deployment (see the module comment in the
    implementation for the full model description).

    One call to {!run} builds the cluster of {!Params.t}, drives the
    closed-loop client population through warmup and measurement windows
    under the deterministic discrete-event clock, and returns the measured
    {!Metrics.t}.  Runs are bit-reproducible for a given parameter set. *)

type t

val create : Params.t -> t
(** Builds replicas, network and client pool; validates the parameters. *)

val start : t -> unit
(** Seeds the client population (staggered over the first 50 ms). *)

val sim : t -> Rdb_des.Sim.t
(** The simulation clock, for callers that drive time manually. *)

val params : t -> Params.t
(** The (validated) parameter set this cluster was built from. *)

(** {2 External measurement and loop ownership}

    A shard deployment ([Rdb_shard.Deployment]) runs S clusters side by
    side, drives their clocks in lockstep itself, and owns the closed
    client loop — completed transactions may re-enter on a {e different}
    shard.  These hooks expose exactly the pieces {!measure} is built
    from; with no sink installed and a single caller-driven cluster the
    composition is bit-identical to {!measure}. *)

val set_completion_sink : t -> (int array -> unit) -> unit
(** Replace the closed-loop resubmission: freshly completed transaction
    ids are passed to the sink instead of being resubmitted locally.  The
    sink typically routes each replacement via {!submit_fresh} on some
    cluster of the deployment.  Installing a sink that immediately calls
    [submit_fresh t (Array.length fresh)] reproduces the classic loop
    bit-for-bit. *)

val submit_fresh : t -> int -> unit
(** Submit [k] brand-new transactions through the normal client path
    (submit-time recording, round-robin primary targeting,
    retransmission timers) — the replacement the closed loop would have
    made. *)

val next_txn : t -> int
(** The id the next fresh transaction will receive (ids are sequential),
    so a caller can associate protocol state with a transaction it is
    about to submit. *)

val set_measuring : t -> bool -> unit
(** Open/close the measurement window: while on, completions accumulate
    into throughput/latency counters ({!measure} flips this internally). *)

type snapshot
(** Cumulative counters (stage occupancy, CPU busy-time, network and
    ledger totals) at one instant; two of them bracket a window. *)

val snapshot : t -> snapshot

val metrics_between : t -> snapshot -> snapshot -> Metrics.t
(** The metrics of the window bracketed by two snapshots — the exact
    accounting {!measure} performs, for callers driving the clock
    themselves.  Latency and completion counters cover what
    {!set_measuring} gated in; call once per cluster, at the end (it also
    finalises observability output). *)

(** {2 Faults and recovery}

    The schedule in {!Params.t}[.nemesis] is installed by {!create};
    {!inject} applies one extra fault immediately (same dispatch). *)

val inject : t -> Nemesis.fault -> unit

val current_view : t -> int
(** Highest view any replica has installed (0 until a view change). *)

val instance_views : t -> int array
(** Highest installed view of each consensus instance, observed
    cluster-wide (index = instance id; a single-element array for classic
    [instances = 1] deployments).  Lets tests assert that a nemesis
    {!Nemesis.fault.Crash_instance_primary} advanced {e only} the targeted
    instance's view. *)

val retransmissions : t -> int
(** Client request re-sends so far (see {!Params.t}[.client_timeout]). *)

val duplicate_completions : t -> int
(** Transactions that completed through more than one (view, seq) slot;
    each was counted exactly once towards throughput. *)

val total_completed : t -> int
(** Fresh transaction completions since [start] (warmup included). *)

val time_to_recovery : t -> float option
(** Seconds from the first nemesis-injected primary crash to the first
    completion decided in a later view; [None] before recovery (or when no
    primary crash was injected). *)

val state_transfers : t -> int
(** Checkpoint-driven state transfers that successfully installed a chain
    segment so far, cluster-wide (see {!Rdb_consensus.State_transfer}). *)

val time_to_catch_up : t -> float option
(** Seconds from the first State_request broadcast to the first successful
    segment install; [None] while no state transfer has completed.  With
    one recovering replica this is its time-to-catch-up. *)

val ledger_gap : t -> int -> int
(** Ledger height of the healthiest replica minus replica [i]'s: the gap a
    state transfer would have to cover right now (0 = caught up). *)

val ledger_height : t -> int -> int
(** Highest block sequence in replica [i]'s ledger. *)

val verify_cache_stats : t -> int * int
(** Aggregate (hits, misses) over every replica's verification and digest
    memo tables ({!Params.t}[.verify_sharing]); (0, 0) when sharing is off
    or nothing was probed. *)

val rejected_forgeries : t -> int
(** Tampered messages (forged MAC or corrupted batch digest, from a
    {!Nemesis.fault.Corrupt_mac} / {!Nemesis.fault.Corrupt_digest}
    attacker) rejected at receivers so far, cluster-wide.  A rejected
    forgery costs the receiver a full verification, is never admitted to
    the verify-sharing caches, and never reaches a consensus core. *)

val equivocations_detected : t -> int
(** Conflicting proposals observed for an occupied slot — evidence of an
    equivocating primary ({!Nemesis.fault.Equivocate}) — summed over every
    replica's consensus core. *)

val vc_spam_suppressed : t -> int
(** View-change messages discarded by the cores' per-sender rate limit
    ({!Nemesis.fault.View_change_spam}), summed cluster-wide. *)

val suppressed_sends : t -> int
(** Outbound messages a byzantine interposition silently swallowed
    ({!Nemesis.fault.Silence}): sent by the node's stack, never put on the
    wire. *)

(** {2 Observability}

    When {!Params.obs_enabled} holds (the [trace] flag or a [trace_out] /
    [trace_csv] destination), the cluster is built with stage/CPU probes, a
    periodic time-series sampler and a Chrome [trace_event] collector; the
    run's {!Metrics.t} then carries the per-stage latency breakdown and the
    per-transaction span phases.  All of it only {e reads} simulation state,
    so every metric is identical with tracing on or off. *)

val trace_json : t -> string option
(** The Chrome [trace_event] JSON collected so far ([None] when tracing is
    off).  Load it in [chrome://tracing] or Perfetto: one process per
    replica, one track per pipeline stage, counter tracks for queue depths
    and instant events for faults and view changes. *)

val series_csv : t -> string option
(** The sampled time-series (queue depths, occupancy, counters) as CSV;
    [None] when tracing is off. *)

val check_safety : t -> (unit, string) result
(** Cross-replica agreement: every retained ledger verifies, and no two
    replicas committed different batches at the same sequence number. *)

val debug_dump : t -> unit
(** One-line diagnostic snapshot (queue depths, instance counts) to stdout. *)

val measure : t -> Metrics.t
(** Drive a freshly created (not yet started) cluster through its warmup
    and measurement windows and report; the cluster stays inspectable
    afterwards (e.g. {!verify_cache_stats}, {!check_safety}). *)

val run : Params.t -> Metrics.t
(** [create] + [start] + run to [warmup + measure], returning the metrics
    of the measurement window. *)

(** {2 Bounded (campaign) runs}

    A wedged deployment — say a view-change storm under heavy loss — keeps
    scheduling retransmission and timer events forever, so an unbounded run
    only terminates because simulated time does.  The fault-campaign
    harness instead gives each run a hard {e event} budget: when the budget
    is spent with live work remaining, the run stops immediately with
    {!completion.Event_budget_exhausted} and whatever metrics had
    accumulated, instead of burning wall-clock on a run that will be
    classified wedged anyway.  Budgets are deterministic (unlike wall-clock
    timeouts), so budgeted campaigns stay bit-reproducible. *)

type completion =
  | Completed  (** the run reached its [warmup + measure] horizon *)
  | Event_budget_exhausted
      (** the event budget ran out first: the run is wedged or pathologically
          event-dense; metrics cover only the progress made *)

val measure_bounded : ?max_events:int -> t -> Metrics.t * completion
(** {!measure} under an event budget.  Without [max_events] this is exactly
    {!measure} (and always [Completed]). *)

val run_bounded : ?max_events:int -> Params.t -> Metrics.t * completion
(** [create] + {!measure_bounded}. *)

val close : t -> unit
(** Release OS resources held by durable ledger backends (WAL/B-tree file
    handles); a no-op for in-memory deployments.  Call after the last
    inspection of a durable cluster — campaign harnesses run hundreds of
    clusters per process. *)

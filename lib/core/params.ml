(* See params.mli for the model.  The flat record here is the *resolved*
   configuration — the read surface the whole simulator keeps — while the
   sub-modules are the only public way to build one. *)

module Sim = Rdb_des.Sim
module Signer = Rdb_crypto.Signer
module Axis = Rdb_obs.Axis

type protocol = Pbft | Zyzzyva | Hotstuff

let protocol_name = function
  | Pbft -> "pbft"
  | Zyzzyva -> "zyzzyva"
  | Hotstuff -> "hotstuff"

let protocol_of_name = function
  | "pbft" -> Some Pbft
  | "zyzzyva" | "zyz" -> Some Zyzzyva
  | "hotstuff" | "hs" -> Some Hotstuff
  | _ -> None

(* ---- structured sub-records ------------------------------------------------ *)

module Consensus = struct
  type t = {
    protocol : protocol;
    n : int;
    instances : int;
    batch_size : int;
    max_inflight_batches : int;
    checkpoint_txns : int;
    view_timeout : Sim.time;
    zyzzyva_timeout : Sim.time;
    client_scheme : Signer.scheme;
    replica_scheme : Signer.scheme;
    reply_scheme : Signer.scheme;
    verify_sharing : bool;
    verify_cache_capacity : int;
    use_buffer_pool : bool;
  }

  let default =
    {
      protocol = Pbft;
      n = 16;
      instances = 1;
      batch_size = 100;
      max_inflight_batches = 64;
      checkpoint_txns = 10_000;
      view_timeout = Sim.ms 150.0;
      zyzzyva_timeout = Sim.ms 40.0;
      client_scheme = Signer.Ed25519;
      replica_scheme = Signer.Cmac_aes;
      reply_scheme = Signer.Cmac_aes;
      verify_sharing = true;
      verify_cache_capacity = 8192;
      use_buffer_pool = true;
    }

  let v ?(protocol = default.protocol) ?(n = default.n) ?(instances = default.instances)
      ?(batch_size = default.batch_size) ?(max_inflight_batches = default.max_inflight_batches)
      ?(checkpoint_txns = default.checkpoint_txns) ?(view_timeout = default.view_timeout)
      ?(zyzzyva_timeout = default.zyzzyva_timeout) ?(client_scheme = default.client_scheme)
      ?(replica_scheme = default.replica_scheme) ?(reply_scheme = default.reply_scheme)
      ?(verify_sharing = default.verify_sharing)
      ?(verify_cache_capacity = default.verify_cache_capacity)
      ?(use_buffer_pool = default.use_buffer_pool) () =
    {
      protocol;
      n;
      instances;
      batch_size;
      max_inflight_batches;
      checkpoint_txns;
      view_timeout;
      zyzzyva_timeout;
      client_scheme;
      replica_scheme;
      reply_scheme;
      verify_sharing;
      verify_cache_capacity;
      use_buffer_pool;
    }
end

module Workload = struct
  type t = {
    clients : int;
    ops_per_txn : int;
    txn_wire_bytes : int;
    preprepare_payload_bytes : int;
  }

  let default =
    { clients = 80_000; ops_per_txn = 1; txn_wire_bytes = 50; preprepare_payload_bytes = 0 }

  let v ?(clients = default.clients) ?(ops_per_txn = default.ops_per_txn)
      ?(txn_wire_bytes = default.txn_wire_bytes)
      ?(preprepare_payload_bytes = default.preprepare_payload_bytes) () =
    { clients; ops_per_txn; txn_wire_bytes; preprepare_payload_bytes }
end

module Exec = struct
  type t = {
    cores : int;
    batch_threads : int;
    execute_threads : int;
    exec_records : int;
    exec_force_parallel : bool;
    sqlite : bool;
    cost : Rdb_crypto.Cost_model.t;
  }

  let default =
    {
      cores = 8;
      batch_threads = 2;
      execute_threads = 1;
      exec_records = 600_000;
      exec_force_parallel = false;
      sqlite = false;
      cost = Rdb_crypto.Cost_model.default;
    }

  let v ?(cores = default.cores) ?(batch_threads = default.batch_threads)
      ?(execute_threads = default.execute_threads) ?(exec_records = default.exec_records)
      ?(exec_force_parallel = default.exec_force_parallel) ?(sqlite = default.sqlite)
      ?(cost = default.cost) () =
    { cores; batch_threads; execute_threads; exec_records; exec_force_parallel; sqlite; cost }
end

module Faults = struct
  type t = {
    crashed_backups : int;
    loss_rate : float;
    duplication_rate : float;
    extra_jitter : Sim.time;
    nemesis : Nemesis.schedule;
    client_timeout : Sim.time;
  }

  let default =
    {
      crashed_backups = 0;
      loss_rate = 0.0;
      duplication_rate = 0.0;
      extra_jitter = 0;
      nemesis = [];
      client_timeout = 0;
    }

  let v ?(crashed_backups = default.crashed_backups) ?(loss_rate = default.loss_rate)
      ?(duplication_rate = default.duplication_rate) ?(extra_jitter = default.extra_jitter)
      ?(nemesis = default.nemesis) ?(client_timeout = default.client_timeout) () =
    { crashed_backups; loss_rate; duplication_rate; extra_jitter; nemesis; client_timeout }
end

module Durability = struct
  type t = { durable : bool; data_dir : string option }

  let default = { durable = false; data_dir = None }

  let v ?(durable = default.durable) ?(data_dir = default.data_dir) () = { durable; data_dir }
end

module Topology = struct
  type t = {
    bandwidth_gbps : float;
    latency : Sim.time;
    jitter : Sim.time;
    client_machines : int;
    shards : int;
    cross_shard_fraction : float;
    regions : Rdb_net.Topology.t option;
  }

  let default =
    {
      bandwidth_gbps = 7.0;
      latency = Sim.us 250.0;
      jitter = Sim.us 50.0;
      client_machines = 4;
      shards = 1;
      cross_shard_fraction = 0.0;
      regions = None;
    }

  let v ?(bandwidth_gbps = default.bandwidth_gbps) ?(latency = default.latency)
      ?(jitter = default.jitter) ?(client_machines = default.client_machines)
      ?(shards = default.shards) ?(cross_shard_fraction = default.cross_shard_fraction)
      ?(regions = default.regions) () =
    { bandwidth_gbps; latency; jitter; client_machines; shards; cross_shard_fraction; regions }
end

module Obs = struct
  type t = {
    trace : bool;
    trace_out : string option;
    trace_csv : string option;
    trace_interval : Sim.time;
    trace_max_events : int;
  }

  let default =
    {
      trace = false;
      trace_out = None;
      trace_csv = None;
      trace_interval = Sim.ms 5.0;
      trace_max_events = 200_000;
    }

  let v ?(trace = default.trace) ?(trace_out = default.trace_out)
      ?(trace_csv = default.trace_csv) ?(trace_interval = default.trace_interval)
      ?(trace_max_events = default.trace_max_events) () =
    { trace; trace_out; trace_csv; trace_interval; trace_max_events }
end

(* ---- the resolved record --------------------------------------------------- *)

type t = {
  protocol : protocol;
  n : int;
  clients : int;
  client_machines : int;
  batch_size : int;
  ops_per_txn : int;
  txn_wire_bytes : int;
  preprepare_payload_bytes : int;
  client_scheme : Signer.scheme;
  replica_scheme : Signer.scheme;
  reply_scheme : Signer.scheme;
  sqlite : bool;
  durable : bool;
  data_dir : string option;
  cores : int;
  instances : int;
  batch_threads : int;
  execute_threads : int;
  exec_records : int;
  exec_force_parallel : bool;
  checkpoint_txns : int;
  max_inflight_batches : int;
  crashed_backups : int;
  loss_rate : float;
  duplication_rate : float;
  extra_jitter : Sim.time;
  nemesis : Nemesis.schedule;
  client_timeout : Sim.time;
  view_timeout : Sim.time;
  use_buffer_pool : bool;
  verify_sharing : bool;
  verify_cache_capacity : int;
  zyzzyva_timeout : Sim.time;
  bandwidth_gbps : float;
  latency : Sim.time;
  jitter : Sim.time;
  shards : int;
  cross_shard_fraction : float;
  regions : Rdb_net.Topology.t option;
  cost : Rdb_crypto.Cost_model.t;
  warmup : Sim.time;
  measure : Sim.time;
  seed : int64;
  trace : bool;
  trace_out : string option;
  trace_csv : string option;
  trace_interval : Sim.time;
  trace_max_events : int;
}

let assemble (c : Consensus.t) (w : Workload.t) (e : Exec.t) (fa : Faults.t) (d : Durability.t)
    (tp : Topology.t) (o : Obs.t) ~warmup ~measure ~seed : t =
  {
    protocol = c.Consensus.protocol;
    n = c.Consensus.n;
    clients = w.Workload.clients;
    client_machines = tp.Topology.client_machines;
    batch_size = c.Consensus.batch_size;
    ops_per_txn = w.Workload.ops_per_txn;
    txn_wire_bytes = w.Workload.txn_wire_bytes;
    preprepare_payload_bytes = w.Workload.preprepare_payload_bytes;
    client_scheme = c.Consensus.client_scheme;
    replica_scheme = c.Consensus.replica_scheme;
    reply_scheme = c.Consensus.reply_scheme;
    sqlite = e.Exec.sqlite;
    durable = d.Durability.durable;
    data_dir = d.Durability.data_dir;
    cores = e.Exec.cores;
    instances = c.Consensus.instances;
    batch_threads = e.Exec.batch_threads;
    execute_threads = e.Exec.execute_threads;
    exec_records = e.Exec.exec_records;
    exec_force_parallel = e.Exec.exec_force_parallel;
    checkpoint_txns = c.Consensus.checkpoint_txns;
    max_inflight_batches = c.Consensus.max_inflight_batches;
    crashed_backups = fa.Faults.crashed_backups;
    loss_rate = fa.Faults.loss_rate;
    duplication_rate = fa.Faults.duplication_rate;
    extra_jitter = fa.Faults.extra_jitter;
    nemesis = fa.Faults.nemesis;
    client_timeout = fa.Faults.client_timeout;
    view_timeout = c.Consensus.view_timeout;
    use_buffer_pool = c.Consensus.use_buffer_pool;
    verify_sharing = c.Consensus.verify_sharing;
    verify_cache_capacity = c.Consensus.verify_cache_capacity;
    zyzzyva_timeout = c.Consensus.zyzzyva_timeout;
    bandwidth_gbps = tp.Topology.bandwidth_gbps;
    latency = tp.Topology.latency;
    jitter = tp.Topology.jitter;
    shards = tp.Topology.shards;
    cross_shard_fraction = tp.Topology.cross_shard_fraction;
    regions = tp.Topology.regions;
    cost = e.Exec.cost;
    warmup;
    measure;
    seed;
    trace = o.Obs.trace;
    trace_out = o.Obs.trace_out;
    trace_csv = o.Obs.trace_csv;
    trace_interval = o.Obs.trace_interval;
    trace_max_events = o.Obs.trace_max_events;
  }

let make ?(consensus = Consensus.default) ?(workload = Workload.default) ?(exec = Exec.default)
    ?(faults = Faults.default) ?(durability = Durability.default)
    ?(topology = Topology.default) ?(obs = Obs.default) ?(warmup = Sim.seconds 0.5)
    ?(measure = Sim.seconds 1.0) ?(seed = 0x5265736442L) () =
  assemble consensus workload exec faults durability topology obs ~warmup ~measure ~seed

let default = make ()

(* ---- projections ----------------------------------------------------------- *)

let consensus (p : t) : Consensus.t =
  {
    Consensus.protocol = p.protocol;
    n = p.n;
    instances = p.instances;
    batch_size = p.batch_size;
    max_inflight_batches = p.max_inflight_batches;
    checkpoint_txns = p.checkpoint_txns;
    view_timeout = p.view_timeout;
    zyzzyva_timeout = p.zyzzyva_timeout;
    client_scheme = p.client_scheme;
    replica_scheme = p.replica_scheme;
    reply_scheme = p.reply_scheme;
    verify_sharing = p.verify_sharing;
    verify_cache_capacity = p.verify_cache_capacity;
    use_buffer_pool = p.use_buffer_pool;
  }

let workload (p : t) : Workload.t =
  {
    Workload.clients = p.clients;
    ops_per_txn = p.ops_per_txn;
    txn_wire_bytes = p.txn_wire_bytes;
    preprepare_payload_bytes = p.preprepare_payload_bytes;
  }

let exec (p : t) : Exec.t =
  {
    Exec.cores = p.cores;
    batch_threads = p.batch_threads;
    execute_threads = p.execute_threads;
    exec_records = p.exec_records;
    exec_force_parallel = p.exec_force_parallel;
    sqlite = p.sqlite;
    cost = p.cost;
  }

let faults (p : t) : Faults.t =
  {
    Faults.crashed_backups = p.crashed_backups;
    loss_rate = p.loss_rate;
    duplication_rate = p.duplication_rate;
    extra_jitter = p.extra_jitter;
    nemesis = p.nemesis;
    client_timeout = p.client_timeout;
  }

let durability (p : t) : Durability.t = { Durability.durable = p.durable; data_dir = p.data_dir }

let topology (p : t) : Topology.t =
  {
    Topology.bandwidth_gbps = p.bandwidth_gbps;
    latency = p.latency;
    jitter = p.jitter;
    client_machines = p.client_machines;
    shards = p.shards;
    cross_shard_fraction = p.cross_shard_fraction;
    regions = p.regions;
  }

let obs (p : t) : Obs.t =
  {
    Obs.trace = p.trace;
    trace_out = p.trace_out;
    trace_csv = p.trace_csv;
    trace_interval = p.trace_interval;
    trace_max_events = p.trace_max_events;
  }

let rebuild p ~c ~w ~e ~fa ~d ~tp ~o =
  assemble c w e fa d tp o ~warmup:p.warmup ~measure:p.measure ~seed:p.seed

let split p = (consensus p, workload p, exec p, faults p, durability p, topology p, obs p)

let map_consensus f p =
  let c, w, e, fa, d, tp, o = split p in
  rebuild p ~c:(f c) ~w ~e ~fa ~d ~tp ~o

let map_workload f p =
  let c, w, e, fa, d, tp, o = split p in
  rebuild p ~c ~w:(f w) ~e ~fa ~d ~tp ~o

let map_exec f p =
  let c, w, e, fa, d, tp, o = split p in
  rebuild p ~c ~w ~e:(f e) ~fa ~d ~tp ~o

let map_faults f p =
  let c, w, e, fa, d, tp, o = split p in
  rebuild p ~c ~w ~e ~fa:(f fa) ~d ~tp ~o

let map_durability f p =
  let c, w, e, fa, d, tp, o = split p in
  rebuild p ~c ~w ~e ~fa ~d:(f d) ~tp ~o

let map_topology f p =
  let c, w, e, fa, d, tp, o = split p in
  rebuild p ~c ~w ~e ~fa ~d ~tp:(f tp) ~o

let map_obs f p =
  let c, w, e, fa, d, tp, o = split p in
  rebuild p ~c ~w ~e ~fa ~d ~tp ~o:(f o)

let with_protocol protocol = map_consensus (fun c -> { c with Consensus.protocol })
let with_n n = map_consensus (fun c -> { c with Consensus.n })
let with_instances instances = map_consensus (fun c -> { c with Consensus.instances })
let with_batch_size batch_size = map_consensus (fun c -> { c with Consensus.batch_size })
let with_clients clients = map_workload (fun w -> { w with Workload.clients })
let with_execute_threads execute_threads = map_exec (fun e -> { e with Exec.execute_threads })
let with_batch_threads batch_threads = map_exec (fun e -> { e with Exec.batch_threads })
let with_cores cores = map_exec (fun e -> { e with Exec.cores })
let with_crashed_backups crashed_backups = map_faults (fun f -> { f with Faults.crashed_backups })
let with_nemesis nemesis = map_faults (fun f -> { f with Faults.nemesis })
let with_view_timeout view_timeout = map_consensus (fun c -> { c with Consensus.view_timeout })
let with_client_timeout client_timeout = map_faults (fun f -> { f with Faults.client_timeout })
let with_durable durable = map_durability (fun d -> { d with Durability.durable })
let with_data_dir data_dir = map_durability (fun d -> { d with Durability.data_dir })
let with_shards shards = map_topology (fun tp -> { tp with Topology.shards })

let with_cross_shard_fraction cross_shard_fraction =
  map_topology (fun tp -> { tp with Topology.cross_shard_fraction })

let with_seed seed p = { p with seed }
let with_windows ~warmup ~measure p = { p with warmup; measure }
let with_trace trace = map_obs (fun o -> { o with Obs.trace })

(* ---- derived quantities ---------------------------------------------------- *)

let f t = (t.n - 1) / 3

(** Conflict-aware execute lanes this configuration runs: [execute_threads]
    when E >= 2, one when [exec_force_parallel] routes E = 1 through the
    lane machinery, 0 for the classic (E <= 1) pipeline. *)
let exec_lanes t =
  if t.execute_threads > 1 then t.execute_threads
  else if t.exec_force_parallel && t.execute_threads = 1 then 1
  else 0

let obs_enabled t = t.trace || t.trace_out <> None || t.trace_csv <> None

let checkpoint_interval t = max 1 (t.checkpoint_txns / max 1 t.batch_size)

let validate t =
  if t.n < 4 then invalid_arg "Params: n must be >= 4";
  if t.batch_size < 1 then invalid_arg "Params: batch_size must be >= 1";
  if t.execute_threads < 0 || t.execute_threads > 64 then
    invalid_arg
      "Params: execute_threads must be in [0, 64] (E >= 2 runs the conflict-aware lane \
       scheduler; the paper's bare multi-threaded execution is never allowed because \
       unscheduled execution threads cause data conflicts)";
  if t.exec_records < 1 then invalid_arg "Params: exec_records must be >= 1";
  if t.exec_force_parallel && t.execute_threads < 1 then
    invalid_arg "Params: exec_force_parallel needs execute_threads >= 1";
  if t.batch_threads < 0 then invalid_arg "Params: batch_threads must be >= 0";
  if t.crashed_backups > f t then invalid_arg "Params: cannot crash more than f backups";
  if t.clients < 1 then invalid_arg "Params: need at least one client";
  if t.cores < 1 then invalid_arg "Params: need at least one core";
  if t.instances < 1 then invalid_arg "Params: instances must be >= 1";
  if t.instances > 1 && t.protocol <> Pbft then
    invalid_arg "Params: multi-primary ordering (instances > 1) is a PBFT deployment";
  if t.instances > 62 then invalid_arg "Params: instances must be <= 62";
  if t.loss_rate < 0.0 || t.loss_rate >= 1.0 then
    invalid_arg "Params: loss_rate must be in [0, 1)";
  if t.duplication_rate < 0.0 || t.duplication_rate >= 1.0 then
    invalid_arg "Params: duplication_rate must be in [0, 1)";
  if t.extra_jitter < 0 then invalid_arg "Params: extra_jitter must be non-negative";
  if t.client_timeout < 0 then invalid_arg "Params: client_timeout must be non-negative";
  if t.view_timeout <= 0 then invalid_arg "Params: view_timeout must be positive";
  if t.verify_cache_capacity < 1 then
    invalid_arg "Params: verify_cache_capacity must be >= 1";
  if t.data_dir <> None && not t.durable then
    invalid_arg "Params: data_dir is only meaningful with durable = true";
  if t.trace_interval <= 0 then invalid_arg "Params: trace_interval must be positive";
  if t.trace_max_events < 1 then invalid_arg "Params: trace_max_events must be >= 1";
  if t.shards < 1 then invalid_arg "Params: shards must be >= 1";
  if t.shards > 64 then invalid_arg "Params: shards must be <= 64";
  if t.cross_shard_fraction < 0.0 || t.cross_shard_fraction > 1.0 then
    invalid_arg "Params: cross_shard_fraction must be in [0, 1]";
  if t.cross_shard_fraction > 0.0 && t.shards < 2 then
    invalid_arg "Params: cross_shard_fraction needs shards >= 2";
  (match t.regions with
  | Some topo ->
    if Rdb_net.Topology.shards topo < t.shards then
      invalid_arg "Params: regions topology places fewer shards than configured"
  | None -> ());
  Nemesis.validate ~n:t.n t.nemesis

(* ---- the deprecated flat constructor --------------------------------------- *)

module Compat = struct
  let make ?protocol ?n ?clients ?client_machines ?batch_size ?ops_per_txn ?txn_wire_bytes
      ?preprepare_payload_bytes ?client_scheme ?replica_scheme ?reply_scheme ?sqlite ?durable
      ?data_dir ?cores ?instances ?batch_threads ?execute_threads ?exec_records
      ?exec_force_parallel ?checkpoint_txns ?max_inflight_batches ?crashed_backups ?loss_rate
      ?duplication_rate ?extra_jitter ?nemesis ?client_timeout ?view_timeout ?use_buffer_pool
      ?verify_sharing ?verify_cache_capacity ?zyzzyva_timeout ?bandwidth_gbps ?latency ?jitter
      ?shards ?cross_shard_fraction ?regions ?cost ?warmup ?measure ?seed ?trace ?trace_out
      ?trace_csv ?trace_interval ?trace_max_events () =
    let opt v d = Option.value v ~default:d in
    let d0 = default in
    {
      protocol = opt protocol d0.protocol;
      n = opt n d0.n;
      clients = opt clients d0.clients;
      client_machines = opt client_machines d0.client_machines;
      batch_size = opt batch_size d0.batch_size;
      ops_per_txn = opt ops_per_txn d0.ops_per_txn;
      txn_wire_bytes = opt txn_wire_bytes d0.txn_wire_bytes;
      preprepare_payload_bytes = opt preprepare_payload_bytes d0.preprepare_payload_bytes;
      client_scheme = opt client_scheme d0.client_scheme;
      replica_scheme = opt replica_scheme d0.replica_scheme;
      reply_scheme = opt reply_scheme d0.reply_scheme;
      sqlite = opt sqlite d0.sqlite;
      durable = opt durable d0.durable;
      data_dir = opt data_dir d0.data_dir;
      cores = opt cores d0.cores;
      instances = opt instances d0.instances;
      batch_threads = opt batch_threads d0.batch_threads;
      execute_threads = opt execute_threads d0.execute_threads;
      exec_records = opt exec_records d0.exec_records;
      exec_force_parallel = opt exec_force_parallel d0.exec_force_parallel;
      checkpoint_txns = opt checkpoint_txns d0.checkpoint_txns;
      max_inflight_batches = opt max_inflight_batches d0.max_inflight_batches;
      crashed_backups = opt crashed_backups d0.crashed_backups;
      loss_rate = opt loss_rate d0.loss_rate;
      duplication_rate = opt duplication_rate d0.duplication_rate;
      extra_jitter = opt extra_jitter d0.extra_jitter;
      nemesis = opt nemesis d0.nemesis;
      client_timeout = opt client_timeout d0.client_timeout;
      view_timeout = opt view_timeout d0.view_timeout;
      use_buffer_pool = opt use_buffer_pool d0.use_buffer_pool;
      verify_sharing = opt verify_sharing d0.verify_sharing;
      verify_cache_capacity = opt verify_cache_capacity d0.verify_cache_capacity;
      zyzzyva_timeout = opt zyzzyva_timeout d0.zyzzyva_timeout;
      bandwidth_gbps = opt bandwidth_gbps d0.bandwidth_gbps;
      latency = opt latency d0.latency;
      jitter = opt jitter d0.jitter;
      shards = opt shards d0.shards;
      cross_shard_fraction = opt cross_shard_fraction d0.cross_shard_fraction;
      regions = opt regions d0.regions;
      cost = opt cost d0.cost;
      warmup = opt warmup d0.warmup;
      measure = opt measure d0.measure;
      seed = opt seed d0.seed;
      trace = opt trace d0.trace;
      trace_out = opt trace_out d0.trace_out;
      trace_csv = opt trace_csv d0.trace_csv;
      trace_interval = opt trace_interval d0.trace_interval;
      trace_max_events = opt trace_max_events d0.trace_max_events;
    }
end

(* ---- the axis table -------------------------------------------------------- *)

module Spec = struct
  type entry = {
    key : string;
    aliases : string list;
    doc : string;
    bool_flag : bool;
    get : t -> string;
    set : string -> t -> (t, string) result;
  }

  let int_set name f v p =
    match int_of_string_opt v with
    | Some i -> Ok (f i p)
    | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name v)

  let float_set name f v p =
    match float_of_string_opt v with
    | Some x -> Ok (f x p)
    | None -> Error (Printf.sprintf "%s: expected a number, got %S" name v)

  let bool_set name f v p =
    match bool_of_string_opt v with
    | Some b -> Ok (f b p)
    | None -> Error (Printf.sprintf "%s: expected true or false, got %S" name v)

  let scheme_of_name = function
    | "none" -> Some Signer.No_sig
    | "cmac" -> Some Signer.Cmac_aes
    | "ed25519" -> Some Signer.Ed25519
    | "rsa" -> Some Signer.Rsa
    | _ -> None

  let scheme_set name f v p =
    match scheme_of_name v with
    | Some s -> Ok (f s p)
    | None -> Error (Printf.sprintf "%s: unknown scheme %S (none|cmac|ed25519|rsa)" name v)

  let seconds_get t = Printf.sprintf "%g" (Sim.to_seconds t)

  let entries =
    [
      {
        key = Axis.protocol;
        aliases = [ "p" ];
        doc = "Consensus protocol (pbft|zyzzyva|hotstuff).";
        bool_flag = false;
        get = (fun p -> protocol_name p.protocol);
        set =
          (fun v p ->
            match protocol_of_name v with
            | Some pr -> Ok (with_protocol pr p)
            | None ->
              Error (Printf.sprintf "protocol: unknown protocol %S (pbft|zyzzyva|hotstuff)" v));
      };
      {
        key = Axis.replicas;
        aliases = [ "n" ];
        doc = "Number of replicas per consensus group (>= 4).";
        bool_flag = false;
        get = (fun p -> string_of_int p.n);
        set = int_set Axis.replicas with_n;
      };
      {
        key = Axis.clients;
        aliases = [ "c" ];
        doc = "Closed-loop client population.";
        bool_flag = false;
        get = (fun p -> string_of_int p.clients);
        set = int_set Axis.clients with_clients;
      };
      {
        key = Axis.batch_size;
        aliases = [ "b" ];
        doc = "Transactions per batch.";
        bool_flag = false;
        get = (fun p -> string_of_int p.batch_size);
        set = int_set Axis.batch_size with_batch_size;
      };
      {
        key = Axis.ops_per_txn;
        aliases = [];
        doc = "Operations per transaction.";
        bool_flag = false;
        get = (fun p -> string_of_int p.ops_per_txn);
        set =
          int_set Axis.ops_per_txn (fun ops_per_txn ->
              map_workload (fun w -> { w with Workload.ops_per_txn }));
      };
      {
        key = Axis.payload_bytes;
        aliases = [];
        doc = "Extra Pre-prepare payload bytes (message-size experiments).";
        bool_flag = false;
        get = (fun p -> string_of_int p.preprepare_payload_bytes);
        set =
          int_set Axis.payload_bytes (fun preprepare_payload_bytes ->
              map_workload (fun w -> { w with Workload.preprepare_payload_bytes }));
      };
      {
        key = Axis.client_scheme;
        aliases = [];
        doc = "Client signature scheme (none|cmac|ed25519|rsa).";
        bool_flag = false;
        get = (fun p -> Signer.scheme_name p.client_scheme);
        set =
          scheme_set Axis.client_scheme (fun client_scheme ->
              map_consensus (fun c -> { c with Consensus.client_scheme }));
      };
      {
        key = Axis.replica_scheme;
        aliases = [];
        doc = "Replica-to-replica scheme (none|cmac|ed25519|rsa).";
        bool_flag = false;
        get = (fun p -> Signer.scheme_name p.replica_scheme);
        set =
          scheme_set Axis.replica_scheme (fun replica_scheme ->
              map_consensus (fun c -> { c with Consensus.replica_scheme }));
      };
      {
        key = Axis.reply_scheme;
        aliases = [];
        doc = "Replica-to-client reply scheme (none|cmac|ed25519|rsa).";
        bool_flag = false;
        get = (fun p -> Signer.scheme_name p.reply_scheme);
        set =
          scheme_set Axis.reply_scheme (fun reply_scheme ->
              map_consensus (fun c -> { c with Consensus.reply_scheme }));
      };
      {
        key = Axis.sqlite;
        aliases = [];
        doc = "Use off-memory (SQLite-class) storage.";
        bool_flag = true;
        get = (fun p -> string_of_bool p.sqlite);
        set = bool_set Axis.sqlite (fun sqlite -> map_exec (fun e -> { e with Exec.sqlite }));
      };
      {
        key = Axis.backend;
        aliases = [];
        doc =
          "Ledger backend: mem, or durable for the WAL + B-tree block store (appends and \
           checkpoint flushes charged on the checkpoint-thread).";
        bool_flag = false;
        get = (fun p -> if p.durable then "durable" else "mem");
        set =
          (fun v p ->
            match v with
            | "mem" | "false" -> Ok (with_durable false p)
            | "durable" | "true" -> Ok (with_durable true p)
            | _ -> Error (Printf.sprintf "backend: expected mem or durable, got %S" v));
      };
      {
        key = Axis.data_dir;
        aliases = [];
        doc =
          "Directory for the durable block stores (implies the durable backend; one \
           subdirectory per replica).  Re-using a directory exercises crash-replay recovery.";
        bool_flag = false;
        get = (fun p -> match p.data_dir with Some d -> d | None -> "");
        set = (fun v p -> Ok (p |> with_durable true |> with_data_dir (Some v)));
      };
      {
        key = Axis.cores;
        aliases = [];
        doc = "CPU cores per replica.";
        bool_flag = false;
        get = (fun p -> string_of_int p.cores);
        set = int_set Axis.cores with_cores;
      };
      {
        key = Axis.instances;
        aliases = [ "k" ];
        doc = "Concurrent PBFT consensus instances (multi-primary ordering; 1 = classic).";
        bool_flag = false;
        get = (fun p -> string_of_int p.instances);
        set = int_set Axis.instances with_instances;
      };
      {
        key = Axis.batch_threads;
        aliases = [ "B" ];
        doc = "Batch-threads at the primary (0 = worker batches).";
        bool_flag = false;
        get = (fun p -> string_of_int p.batch_threads);
        set = int_set Axis.batch_threads with_batch_threads;
      };
      {
        key = Axis.exec_threads;
        aliases = [ "E"; "execute-threads" ];
        doc =
          "Execute-threads: 0 = the worker executes, 1 = the paper's dedicated \
           execute-thread, >= 2 = conflict-aware parallel execution across E lanes.";
        bool_flag = false;
        get = (fun p -> string_of_int p.execute_threads);
        set = int_set Axis.exec_threads with_execute_threads;
      };
      {
        key = Axis.crashed;
        aliases = [];
        doc = "Backups crashed at start (<= f).";
        bool_flag = false;
        get = (fun p -> string_of_int p.crashed_backups);
        set = int_set Axis.crashed with_crashed_backups;
      };
      {
        key = Axis.view_timeout_ms;
        aliases = [];
        doc = "View-change timeout in milliseconds.";
        bool_flag = false;
        get = (fun p -> Printf.sprintf "%g" (Sim.to_seconds p.view_timeout *. 1000.0));
        set = float_set Axis.view_timeout_ms (fun ms -> with_view_timeout (Sim.ms ms));
      };
      {
        key = Axis.shards;
        aliases = [ "S" ];
        doc =
          "Independent consensus groups over a partitioned keyspace (1 = the classic \
           single-group deployment).";
        bool_flag = false;
        get = (fun p -> string_of_int p.shards);
        set = int_set Axis.shards with_shards;
      };
      {
        key = Axis.cross_shard;
        aliases = [ "x" ];
        doc =
          "Fraction of transactions touching a second shard (2PC-over-BFT commit path), in \
           [0, 1].";
        bool_flag = false;
        get = (fun p -> Printf.sprintf "%g" p.cross_shard_fraction);
        set = float_set Axis.cross_shard with_cross_shard_fraction;
      };
      {
        key = Axis.warmup;
        aliases = [];
        doc = "Warmup seconds (simulated).";
        bool_flag = false;
        get = (fun p -> seconds_get p.warmup);
        set =
          float_set Axis.warmup (fun s p ->
              with_windows ~warmup:(Sim.seconds s) ~measure:p.measure p);
      };
      {
        key = Axis.measure;
        aliases = [];
        doc = "Measurement seconds (simulated).";
        bool_flag = false;
        get = (fun p -> seconds_get p.measure);
        set =
          float_set Axis.measure (fun s p ->
              with_windows ~warmup:p.warmup ~measure:(Sim.seconds s) p);
      };
      {
        key = Axis.seed;
        aliases = [];
        doc = "Random seed (runs are deterministic).";
        bool_flag = false;
        get = (fun p -> Int64.to_string p.seed);
        set =
          (fun v p ->
            match Int64.of_string_opt v with
            | Some s -> Ok (with_seed s p)
            | None -> Error (Printf.sprintf "seed: expected an integer, got %S" v));
      };
    ]

  let find key = List.find_opt (fun e -> e.key = key) entries

  let apply assignments p =
    List.fold_left
      (fun acc (key, value) ->
        match acc with
        | Error _ as e -> e
        | Ok p -> (
          match find key with
          | None -> Error (Printf.sprintf "unknown configuration axis %S" key)
          | Some e -> e.set value p))
      (Ok p) assignments
end

(** Experiment parameters for a ResilientDB cluster run.

    Defaults reproduce the paper's §5.1 standard setup: 16 replicas on
    8-core machines, 80K clients, batches of 100 transactions, checkpoints
    every 10K transactions, ED25519 client signatures with CMAC+AES between
    replicas, in-memory storage, one worker-thread, two batch-threads, one
    execute-thread. *)

type protocol = Pbft | Zyzzyva | Hotstuff

let protocol_name = function
  | Pbft -> "pbft"
  | Zyzzyva -> "zyzzyva"
  | Hotstuff -> "hotstuff"

type t = {
  protocol : protocol;
  n : int;  (** replicas *)
  clients : int;
  client_machines : int;  (** hosts the client population is spread over *)
  batch_size : int;
  ops_per_txn : int;
  txn_wire_bytes : int;  (** serialized size of one transaction on the wire *)
  preprepare_payload_bytes : int;  (** extra payload per Pre-prepare (Fig. 12) *)
  client_scheme : Rdb_crypto.Signer.scheme;
  replica_scheme : Rdb_crypto.Signer.scheme;
  reply_scheme : Rdb_crypto.Signer.scheme;
      (** scheme for replica->client replies; MAC in the hybrid default *)
  sqlite : bool;  (** off-memory storage for execution (Fig. 14) *)
  durable : bool;
      (** back each replica's ledger with the WAL + B-tree
          {!Rdb_chain.Block_store} instead of the in-memory backend: block
          appends buffer into a write-ahead log and checkpoints flush it,
          surviving process death (Fig. 14's durability column).  The
          flush/append costs are charged on the checkpoint-thread — off the
          consensus critical path *)
  data_dir : string option;
      (** where durable backends live (one subdirectory per replica);
          [None] picks a fresh temporary directory per run.  Point two runs
          at the same directory to exercise crash-replay recovery *)
  cores : int;  (** per replica (Fig. 16) *)
  instances : int;
      (** k concurrent PBFT consensus instances over a round-robin-partitioned
          sequence space, each with its own primary ([i mod n] at view 0),
          merged into one in-order execution stream ({!Rdb_consensus.Multi_pbft}).
          1 = the classic single-primary deployment (the exact seed code
          path); > 1 requires [protocol = Pbft] *)
  batch_threads : int;  (** B; 0 = the worker-thread batches (Fig. 8) *)
  execute_threads : int;
      (** E; 0 = the worker-thread executes, 1 = the paper's dedicated
          execute-thread, >= 2 = conflict-aware parallel execution: each
          committed block's read/write footprints are partitioned by
          {!Rdb_replica.Exec_sched} into E execute lanes with
          barrier-separated rounds, so non-conflicting transactions run
          concurrently while every replica still reaches the state of
          serial in-order execution (the restriction the paper kept —
          "multiple execution threads cause data conflicts" — lifted by
          scheduling around the conflicts instead of ignoring them) *)
  exec_records : int;
      (** keyspace size the execution footprints are drawn from (the YCSB
          active-record count); smaller = more key conflicts = less lane
          parallelism, which is the knob the conflict-rate experiments and
          tests turn *)
  exec_force_parallel : bool;
      (** route [execute_threads = 1] through the conflict-aware lane
          machinery (one lane) instead of the classic execute-thread —
          an ablation/test knob that measures pure scheduling overhead;
          off by default so E = 1 stays bit-identical to the paper's
          pipeline *)
  checkpoint_txns : int;  (** transactions between checkpoints *)
  max_inflight_batches : int;
      (** admission control at the primary: batches proposed but not yet
          completed by clients.  Plays the role of PBFT's high-water mark /
          ResilientDB's finite queues — without it, a large client
          population floods the pipeline with head-of-line-blocking
          consensus instances *)
  crashed_backups : int;  (** backups crashed at t=0 (Fig. 17) *)
  loss_rate : float;  (** steady-state per-message drop probability, all links *)
  duplication_rate : float;  (** per-message duplication probability *)
  extra_jitter : Rdb_des.Sim.time;  (** additional reordering jitter per message *)
  nemesis : Nemesis.schedule;
      (** timed faults injected against the DES clock (primary crash,
          partitions, loss windows, ...); see {!Nemesis} *)
  client_timeout : Rdb_des.Sim.time;
      (** client retransmission timeout (exponential backoff, broadcast to
          all replicas — PBFT's liveness path); 0 disables retransmission,
          which is the right setting for saturated closed-loop throughput
          experiments where a "late" reply is not a lost reply *)
  view_timeout : Rdb_des.Sim.time;
      (** how long a backup with unserved (retransmitted) demand waits for
          execution progress before suspecting the primary *)
  use_buffer_pool : bool;
      (** §4.8: recycle message/transaction objects instead of malloc/free
          per message; off = ablation *)
  verify_sharing : bool;
      (** Q2: memoize batch digests and accepted signature/MAC verifications
          in a bounded per-replica {!Rdb_crypto.Verify_cache}, so repeated
          touchpoints of the same authenticated bytes (execution-time digest
          checks, re-batching after a view change, duplicated or
          retransmitted messages) charge one cache probe instead of the full
          cryptographic operation; off = the protocol-centric ablation that
          re-validates at every touchpoint *)
  verify_cache_capacity : int;
      (** bound on live entries per replica verification/digest cache *)
  zyzzyva_timeout : Rdb_des.Sim.time;
      (** client wait before falling back to a commit certificate *)
  bandwidth_gbps : float;
  latency : Rdb_des.Sim.time;  (** one-way propagation *)
  jitter : Rdb_des.Sim.time;
  cost : Rdb_crypto.Cost_model.t;
  warmup : Rdb_des.Sim.time;
  measure : Rdb_des.Sim.time;
  seed : int64;
  trace : bool;
      (** master switch for the observability layer (span tracing, per-stage
          latency breakdown, time-series sampling).  Off by default: stages
          and CPUs are created without probes, so the fast path is exactly
          the un-instrumented code *)
  trace_out : string option;
      (** write a Chrome [trace_event] JSON file here after the run
          (chrome://tracing / Perfetto); implies [trace] *)
  trace_csv : string option;
      (** write the sampled time-series (queue depths, throughput, faults)
          as CSV here after the run; implies [trace] *)
  trace_interval : Rdb_des.Sim.time;  (** time-series sampling period *)
  trace_max_events : int;  (** cap on buffered trace events per run *)
}

let default =
  {
    protocol = Pbft;
    n = 16;
    clients = 80_000;
    client_machines = 4;
    batch_size = 100;
    ops_per_txn = 1;
    txn_wire_bytes = 50;
    preprepare_payload_bytes = 0;
    client_scheme = Rdb_crypto.Signer.Ed25519;
    replica_scheme = Rdb_crypto.Signer.Cmac_aes;
    reply_scheme = Rdb_crypto.Signer.Cmac_aes;
    sqlite = false;
    durable = false;
    data_dir = None;
    cores = 8;
    instances = 1;
    batch_threads = 2;
    execute_threads = 1;
    exec_records = 600_000;
    exec_force_parallel = false;
    checkpoint_txns = 10_000;
    max_inflight_batches = 64;
    crashed_backups = 0;
    loss_rate = 0.0;
    duplication_rate = 0.0;
    extra_jitter = 0;
    nemesis = [];
    client_timeout = 0;
    view_timeout = Rdb_des.Sim.ms 150.0;
    use_buffer_pool = true;
    verify_sharing = true;
    verify_cache_capacity = 8192;
    zyzzyva_timeout = Rdb_des.Sim.ms 40.0;
    bandwidth_gbps = 7.0;
    latency = Rdb_des.Sim.us 250.0;
    jitter = Rdb_des.Sim.us 50.0;
    cost = Rdb_crypto.Cost_model.default;
    warmup = Rdb_des.Sim.seconds 0.5;
    measure = Rdb_des.Sim.seconds 1.0;
    seed = 0x5265736442L;
    trace = false;
    trace_out = None;
    trace_csv = None;
    trace_interval = Rdb_des.Sim.ms 5.0;
    trace_max_events = 200_000;
  }

let f t = (t.n - 1) / 3

(** Conflict-aware execute lanes this configuration runs: [execute_threads]
    when E >= 2, one when [exec_force_parallel] routes E = 1 through the
    lane machinery, 0 for the classic (E <= 1) pipeline. *)
let exec_lanes t =
  if t.execute_threads > 1 then t.execute_threads
  else if t.exec_force_parallel && t.execute_threads = 1 then 1
  else 0

(** Whether any observability output was requested: the [trace] switch or a
    file destination (either of which turns instrumentation on). *)
let obs_enabled t = t.trace || t.trace_out <> None || t.trace_csv <> None

(** Sequence numbers between checkpoints, derived from the per-transaction
    interval and the batch size. *)
let checkpoint_interval t = max 1 (t.checkpoint_txns / max 1 t.batch_size)

let validate t =
  if t.n < 4 then invalid_arg "Params: n must be >= 4";
  if t.batch_size < 1 then invalid_arg "Params: batch_size must be >= 1";
  if t.execute_threads < 0 || t.execute_threads > 64 then
    invalid_arg
      "Params: execute_threads must be in [0, 64] (E >= 2 runs the conflict-aware lane \
       scheduler; the paper's bare multi-threaded execution is never allowed because \
       unscheduled execution threads cause data conflicts)";
  if t.exec_records < 1 then invalid_arg "Params: exec_records must be >= 1";
  if t.exec_force_parallel && t.execute_threads < 1 then
    invalid_arg "Params: exec_force_parallel needs execute_threads >= 1";
  if t.batch_threads < 0 then invalid_arg "Params: batch_threads must be >= 0";
  if t.crashed_backups > f t then invalid_arg "Params: cannot crash more than f backups";
  if t.clients < 1 then invalid_arg "Params: need at least one client";
  if t.cores < 1 then invalid_arg "Params: need at least one core";
  if t.instances < 1 then invalid_arg "Params: instances must be >= 1";
  if t.instances > 1 && t.protocol <> Pbft then
    invalid_arg "Params: multi-primary ordering (instances > 1) is a PBFT deployment";
  if t.instances > 62 then invalid_arg "Params: instances must be <= 62";
  if t.loss_rate < 0.0 || t.loss_rate >= 1.0 then
    invalid_arg "Params: loss_rate must be in [0, 1)";
  if t.duplication_rate < 0.0 || t.duplication_rate >= 1.0 then
    invalid_arg "Params: duplication_rate must be in [0, 1)";
  if t.extra_jitter < 0 then invalid_arg "Params: extra_jitter must be non-negative";
  if t.client_timeout < 0 then invalid_arg "Params: client_timeout must be non-negative";
  if t.view_timeout <= 0 then invalid_arg "Params: view_timeout must be positive";
  if t.verify_cache_capacity < 1 then
    invalid_arg "Params: verify_cache_capacity must be >= 1";
  if t.data_dir <> None && not t.durable then
    invalid_arg "Params: data_dir is only meaningful with durable = true";
  if t.trace_interval <= 0 then invalid_arg "Params: trace_interval must be positive";
  if t.trace_max_events < 1 then invalid_arg "Params: trace_max_events must be >= 1";
  Nemesis.validate ~n:t.n t.nemesis

(* Record framing: 4-byte big-endian length, 4-byte checksum (first 4 bytes
   of SHA-256), then the payload. *)

type t = { oc : out_channel }

let checksum data = String.sub (Rdb_crypto.Sha256.digest data) 0 4

(* Byte offset just past the last intact record.  A record is intact when
   its length header, checksum and full payload are all present and the
   checksum matches.  Anything after that point is a torn or corrupt tail
   left by a crashed writer. *)
let intact_prefix path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    let good = ref 0 in
    let read_u32 () =
      let b0 = input_byte ic in
      let b1 = input_byte ic in
      let b2 = input_byte ic in
      let b3 = input_byte ic in
      (b0 lsl 24) lor (b1 lsl 16) lor (b2 lsl 8) lor b3
    in
    (try
       let continue = ref true in
       while !continue do
         let len = read_u32 () in
         let expected = really_input_string ic 4 in
         let data = really_input_string ic len in
         if String.equal (checksum data) expected then good := pos_in ic
         else continue := false
       done
     with End_of_file -> ());
    close_in ic;
    !good
  end

let open_log path =
  (* Truncate any torn tail first: with a bare [Open_append], records written
     after a crash would land behind the garbage and [replay] (which stops at
     the first bad record) would never reach them. *)
  let keep = intact_prefix path in
  if Sys.file_exists path && keep < (Unix.stat path).Unix.st_size then
    Unix.truncate path keep;
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { oc }

let put_u32 oc v =
  output_char oc (Char.chr ((v lsr 24) land 0xFF));
  output_char oc (Char.chr ((v lsr 16) land 0xFF));
  output_char oc (Char.chr ((v lsr 8) land 0xFF));
  output_char oc (Char.chr (v land 0xFF))

let append t data =
  put_u32 t.oc (String.length data);
  output_string t.oc (checksum data);
  output_string t.oc data

let flush t = Stdlib.flush t.oc

let close t = close_out t.oc

let replay path f =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    let count = ref 0 in
    let read_u32 () =
      let b0 = input_byte ic in
      let b1 = input_byte ic in
      let b2 = input_byte ic in
      let b3 = input_byte ic in
      (b0 lsl 24) lor (b1 lsl 16) lor (b2 lsl 8) lor b3
    in
    (try
       let continue = ref true in
       while !continue do
         let len = read_u32 () in
         let expected = really_input_string ic 4 in
         let data = really_input_string ic len in
         if String.equal (checksum data) expected then begin
           f data;
           incr count
         end
         else continue := false
       done
     with End_of_file -> ());
    close_in ic;
    !count
  end

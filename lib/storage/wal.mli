(** Append-only write-ahead log with checksummed, length-framed records.

    Used when a replica wants asynchronous persistence of executed batches
    (the paper's §6 "Memory Storage" observation: persistence can be delayed
    and performed off the critical path because at most [f] replicas fail).
    Replay stops at the first torn or corrupt record, which makes a crashed
    writer safe: every fully-flushed record survives. *)

type t

val open_log : string -> t
(** Opens (creating if missing) for appending.  Any torn or corrupt tail
    left by a crashed writer is truncated to the last intact record
    boundary first, so records appended after reopening follow the intact
    prefix and are reachable by {!replay}. *)

val append : t -> string -> unit
(** Appends one record.  Data may contain arbitrary bytes. *)

val flush : t -> unit
(** Forces buffered records to the OS. *)

val close : t -> unit

val replay : string -> (string -> unit) -> int
(** [replay path f] applies [f] to each intact record in order and returns
    the count.  A missing file replays zero records.  Corrupt or truncated
    tails are ignored. *)

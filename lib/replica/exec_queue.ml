type 'a slot = Empty | Full of int * 'a

type 'a t = {
  slots : 'a slot array;
  mutable next : int;
  mutable pending : int;
}

let create ~slots =
  if slots < 1 then invalid_arg "Exec_queue.create: need at least one slot";
  { slots = Array.make slots Empty; next = 1; pending = 0 }

let recommended_slots ~num_clients ~num_req =
  if num_clients < 1 || num_req < 1 then invalid_arg "Exec_queue.recommended_slots";
  2 * num_clients * num_req

let index t seq = seq mod Array.length t.slots

let offer t ~seq v =
  if seq < t.next then Error (Printf.sprintf "sequence %d already executed" seq)
  else if seq >= t.next + Array.length t.slots then
    Error (Printf.sprintf "sequence %d outside the window [%d, %d)" seq t.next (t.next + Array.length t.slots))
  else begin
    match t.slots.(index t seq) with
    | Full (other, _) when other <> seq ->
      (* Cannot happen when the window invariant holds; report loudly. *)
      Error (Printf.sprintf "slot collision: %d vs %d" other seq)
    | Full _ -> Ok () (* duplicate offer is idempotent *)
    | Empty ->
      t.slots.(index t seq) <- Full (seq, v);
      t.pending <- t.pending + 1;
      Ok ()
  end

let poll t =
  match t.slots.(index t t.next) with
  | Full (seq, v) when seq = t.next ->
    t.slots.(index t t.next) <- Empty;
    t.next <- t.next + 1;
    t.pending <- t.pending - 1;
    Some v
  | Full _ | Empty -> None

let next_seq t = t.next

let pending t = t.pending

module Merge = struct
  type 'a t = {
    streams : (int * 'a) Queue.t array;  (* per instance, (global seq, item) *)
    expect : int array;  (* next global seq each instance may offer *)
    mutable next : int;  (* global execution cursor *)
  }

  let create ~instances =
    if instances < 1 then invalid_arg "Exec_queue.Merge.create: need at least one instance";
    {
      streams = Array.init instances (fun _ -> Queue.create ());
      expect = Array.init instances (fun i -> i + 1);
      next = 1;
    }

  let instances t = Array.length t.streams

  let instance_of t ~seq =
    if seq < 1 then invalid_arg "Exec_queue.Merge.instance_of: sequence numbers start at 1";
    (seq - 1) mod Array.length t.streams

  let offer t ~seq v =
    if seq < 1 then Error (Printf.sprintf "sequence %d: global sequence numbers start at 1" seq)
    else begin
      let i = instance_of t ~seq in
      if seq < t.expect.(i) then
        Error (Printf.sprintf "sequence %d of instance %d already offered" seq i)
      else if seq > t.expect.(i) then
        Error
          (Printf.sprintf "sequence %d of instance %d out of order (expected %d)" seq i
             t.expect.(i))
      else begin
        Queue.push (seq, v) t.streams.(i);
        t.expect.(i) <- seq + Array.length t.streams;
        Ok ()
      end
    end

  let advance t ~inst ~seq =
    if inst < 0 || inst >= Array.length t.streams then
      invalid_arg "Exec_queue.Merge.advance: no such instance";
    if seq >= 1 && instance_of t ~seq <> inst then
      invalid_arg "Exec_queue.Merge.advance: sequence not owned by instance";
    let k = Array.length t.streams in
    if seq + k > t.expect.(inst) then t.expect.(inst) <- seq + k

  let waiting_instance t = (t.next - 1) mod Array.length t.streams

  (* A slot can be [Full] (offered, FIFO head when its turn comes), [Hole]
     (not offered yet: the owning instance's expectation has not passed it)
     or [Skipped] (the owning instance moved past it via {!advance} — a
     checkpoint catch-up — so nothing will ever be offered): skipped slots
     advance the cursor silently. *)
  let rec poll t =
    let i = waiting_instance t in
    let q = t.streams.(i) in
    match Queue.peek_opt q with
    | Some (seq, v) when seq = t.next ->
      ignore (Queue.pop q);
      t.next <- t.next + 1;
      Some v
    | Some _ | None ->
      if t.expect.(i) > t.next then begin
        (* The instance moved past this slot without offering it. *)
        t.next <- t.next + 1;
        poll t
      end
      else None

  let next_seq t = t.next

  let pending_of t i =
    if i < 0 || i >= Array.length t.streams then
      invalid_arg "Exec_queue.Merge.pending_of: no such instance";
    Queue.length t.streams.(i)

  (* Highest global sequence number sitting in any stream (0 when nothing is
     queued): everything up to here is committed and waiting, so this is how
     far the blocked instance must catch up before the merge drains. *)
  let horizon t =
    let k = Array.length t.streams in
    let hi = ref 0 in
    Array.iteri
      (fun i q -> if not (Queue.is_empty q) then hi := max !hi (t.expect.(i) - k))
      t.streams;
    !hi

  let pending t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.streams
end

(** The execute-thread's queue array from the paper's §4.6.

    Consensus completes out of order, but execution must be in order.  A
    naive execute-thread would repeatedly scan or re-queue messages until
    the next transaction in order shows up.  ResilientDB instead gives the
    execute-thread [QC = 2 * Num_Clients * Num_Req] logical queues and
    places the message for transaction [txn_id] into queue
    [txn_id mod QC]; the execute-thread then waits on exactly the queue
    where the next-in-order transaction must appear — no scanning, no
    re-queueing, no hash computation.

    The queues are logical: empty slots cost one array cell, so the space
    overhead over a single queue is constant per slot, as the paper notes.

    [slots] must be an upper bound on how far ahead of the execution
    cursor any offered item can be (in ResilientDB: the maximum number of
    in-flight client requests); {!offer} rejects items outside that window
    rather than silently overwriting. *)

type 'a t

val create : slots:int -> 'a t
(** [slots] >= 1; see {!recommended_slots}. *)

val recommended_slots : num_clients:int -> num_req:int -> int
(** The paper's sizing rule: [QC = 2 * Num_Clients * Num_Req]. *)

val offer : 'a t -> seq:int -> 'a -> (unit, string) result
(** Place the item for sequence number [seq] into its slot.  Fails when the
    slot is already occupied by a different sequence number (the window
    invariant was violated) or when [seq] was already executed. *)

val poll : 'a t -> 'a option
(** If the next-in-order item has arrived, dequeue and return it (advancing
    the cursor); [None] when its slot is still empty.  O(1). *)

val next_seq : 'a t -> int
(** The sequence number {!poll} is waiting for (starts at 1). *)

val pending : 'a t -> int
(** Items offered but not yet polled. *)

(** Deterministic k-way merge of per-instance commit streams (the
    multi-primary generalization of the queue above).

    A multi-primary deployment runs [k] concurrent consensus instances over
    a partitioned sequence space: instance [i] owns the global sequence
    numbers [{ s | (s - 1) mod k = i }] (1-based, round-robin).  Each
    instance commits its own slots in {e local} order, but execution must
    consume the {e global} order [1, 2, 3, ...] — so the execute path holds
    one FIFO per instance and a single global cursor that round-robins
    across them, waiting on exactly the instance that owns the next global
    sequence number.

    Hole tracking falls out of the cursor: {!waiting_instance} names the
    instance the merge is blocked on (the one whose slot is the hole), and
    {!pending_of} exposes how far every other instance has run ahead.  The
    hosting system's demand timer uses this to aim its nudge / view-change
    escalation at the stalled instance instead of guessing.

    With [instances = 1] the merge degenerates to a plain FIFO and the
    global cursor is exactly the classic §4.6 behaviour. *)
module Merge : sig
  type 'a t

  val create : instances:int -> 'a t
  (** [instances >= 1] concurrent streams; the cursor starts at global
      sequence number 1 (owned by instance 0). *)

  val instances : 'a t -> int

  val instance_of : 'a t -> seq:int -> int
  (** The instance owning global sequence number [seq]:
      [(seq - 1) mod instances]. *)

  val offer : 'a t -> seq:int -> 'a -> (unit, string) result
  (** Append the item committed at global sequence number [seq] to its
      instance's stream.  Each instance must offer its slots in increasing
      order (consensus cores emit [Execute] in local order, so this holds by
      construction); a duplicate or out-of-order offer is reported as
      [Error] rather than silently reordered. *)

  val advance : 'a t -> inst:int -> seq:int -> unit
  (** Declare that instance [inst] will never offer global sequence number
      [seq] or anything below it that is still missing — it adopted a stable
      checkpoint and skipped ahead (laggard catch-up).  {!poll} then treats
      the missing slots as skipped instead of blocking on them forever.
      Idempotent; a no-op when the instance's expectation is already past
      [seq]. *)

  val poll : 'a t -> 'a option
  (** The item at the global cursor, if its instance has committed it;
      advances the cursor (silently passing over slots {!advance} marked as
      skipped).  [None] while the owning instance's slot is a genuine hole
      (not yet committed).  O(1) amortized. *)

  val next_seq : 'a t -> int
  (** The global sequence number {!poll} waits for (starts at 1). *)

  val waiting_instance : 'a t -> int
  (** The instance owning {!next_seq} — the stream the merge is blocked on
      when {!poll} returns [None]. *)

  val pending : 'a t -> int
  (** Total items offered but not yet polled, across all instances. *)

  val pending_of : 'a t -> int -> int
  (** Items queued by one instance, i.e. how far it has committed ahead of
      the global cursor. *)

  val horizon : 'a t -> int
  (** The highest global sequence number queued in any stream, or 0 when
      nothing is pending.  When the merge is blocked, everything up to the
      horizon is committed-and-waiting: it measures how far the
      {!waiting_instance} must catch up for the backlog to drain. *)
end

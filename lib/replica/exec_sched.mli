(** Conflict-aware lane scheduling for parallel deterministic execution.

    The paper keeps [E = 1] because naive multi-threaded execution of a
    YCSB block races on shared keys ("multiple execution threads cause
    data conflicts", §4.6).  This module lifts that restriction the
    deterministic way: before a block executes, its transactions'
    read/write footprints are analyzed and partitioned into a
    {e lane schedule} — a sequence of rounds, each round an array of
    per-lane transaction lists such that

    - transactions in the {e same lane} of a round run sequentially, in
      block order;
    - transactions in {e different lanes} of the same round touch
      disjoint conflict sets (no key is written by one lane and read or
      written by another), so they may run concurrently with any
      interleaving;
    - rounds are separated by a barrier: round [r+1] starts only after
      every lane of round [r] drained.

    Because {!schedule} is a pure function of the block's footprints and
    the lane count, every replica computes the {e identical} schedule
    from the identical committed block — determinism is preserved
    without any cross-replica coordination, and the final state equals
    the state of serial in-order execution (the conflict-serializability
    argument is spelled out in ARCHITECTURE.md, "Parallel execution").

    With [lanes = 1] the schedule degenerates to a single round holding
    the whole block in order — the classic §4.6 execute-thread. *)

type footprint = {
  reads : string list;  (** keys the transaction reads *)
  writes : string list;  (** keys the transaction writes *)
}
(** One transaction's declared data footprint.  Two transactions
    {e conflict} when one writes a key the other reads or writes. *)

type round = int list array
(** One barrier-delimited round: [round.(l)] lists the transaction
    indices lane [l] executes, in block order.  The array length is the
    plan's lane count. *)

type plan = {
  lanes : int;
  rounds : round list;  (** executed in order, a barrier between each *)
}

val schedule : lanes:int -> footprint array -> plan
(** [schedule ~lanes fps] partitions transactions [0 .. Array.length fps - 1]
    (in block order) into a lane schedule.  Greedy and deterministic:
    each transaction lands in the least-loaded conflict-free lane of the
    current round, joins the single lane it conflicts with, or is
    deferred to a later round when it conflicts with several lanes (or
    with an already-deferred transaction — deferral is transitive, which
    preserves block order between conflicting transactions).
    O(total footprint size) expected.  Raises [Invalid_argument] when
    [lanes < 1]. *)

val validate : footprint array -> plan -> (unit, string) result
(** Checks the plan invariants against the footprints: every transaction
    scheduled exactly once; no two lanes of one round conflict; every
    pair of conflicting transactions appears in block order (same lane,
    or earlier round).  Used by the test suite; [Ok ()] for every plan
    {!schedule} produces. *)

val round_ops : footprint array -> round -> int array
(** Per-lane operation counts (footprint sizes) for one round — the
    shape the cost model charges each lane with. *)

val critical_ops : footprint array -> plan -> int
(** Operations on the plan's critical path: the sum over rounds of the
    busiest lane's operation count.  [critical_ops fps p /. total_ops]
    is the ideal speedup bound the conflict structure allows. *)

val stats : plan -> string
(** One-line human summary, e.g. ["3 rounds over 4 lanes, 100 txns"]. *)

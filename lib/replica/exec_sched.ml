(* Conflict-aware lane scheduling: see exec_sched.mli for the contract.

   The scheduler is a single left-to-right greedy pass per round.  Within
   the round under construction it tracks, per key, which lane wrote it
   and which lanes read it; a transaction whose footprint pins it to more
   than one lane is deferred to the next round, and its keys poison later
   transactions (transitive deferral) so that conflicting transactions
   never leapfrog each other across rounds.  Everything is a pure
   function of (footprints, lanes): no randomness, no wall clock, no
   iteration over unordered containers when choosing lanes — which is
   what makes the schedule identical on every replica. *)

type footprint = { reads : string list; writes : string list }
type round = int list array
type plan = { lanes : int; rounds : round list }

let schedule ~lanes (fps : footprint array) : plan =
  if lanes < 1 then invalid_arg "Exec_sched.schedule: lanes must be >= 1";
  let n = Array.length fps in
  let rounds = ref [] in
  (* Indices still to place, in block order. *)
  let remaining = ref (List.init n Fun.id) in
  while !remaining <> [] do
    (* Per-round state.  [writer] maps key -> lane of its (unique) writer
       this round; [readers] maps key -> lanes that read it.  [loads]
       counts ops per lane for least-loaded placement. *)
    let writer : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let readers : (string, int list) Hashtbl.t = Hashtbl.create 64 in
    let loads = Array.make lanes 0 in
    let lane_rev = Array.make lanes [] in
    (* Keys touched by deferred transactions: any later transaction
       conflicting with a deferred one must also defer, preserving block
       order across the round barrier. *)
    let deferred_w : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let deferred_r : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let deferred = ref [] in
    let conflicts_deferred fp =
      List.exists
        (fun k -> Hashtbl.mem deferred_w k || Hashtbl.mem deferred_r k)
        fp.writes
      || List.exists (fun k -> Hashtbl.mem deferred_w k) fp.reads
    in
    (* Lanes this transaction is pinned to by conflicts already placed in
       the current round.  Returned sorted and deduplicated. *)
    let conflict_lanes fp =
      let ls = ref [] in
      let add l = if not (List.mem l !ls) then ls := l :: !ls in
      List.iter
        (fun k ->
          (match Hashtbl.find_opt writer k with Some l -> add l | None -> ());
          match Hashtbl.find_opt readers k with
          | Some lns -> List.iter add lns
          | None -> ())
        fp.writes;
      List.iter
        (fun k ->
          match Hashtbl.find_opt writer k with Some l -> add l | None -> ())
        fp.reads;
      !ls
    in
    let defer i fp =
      deferred := i :: !deferred;
      List.iter (fun k -> Hashtbl.replace deferred_w k ()) fp.writes;
      List.iter (fun k -> Hashtbl.replace deferred_r k ()) fp.reads
    in
    let place i fp lane =
      lane_rev.(lane) <- i :: lane_rev.(lane);
      loads.(lane) <- loads.(lane) + List.length fp.reads + List.length fp.writes + 1;
      List.iter (fun k -> Hashtbl.replace writer k lane) fp.writes;
      List.iter
        (fun k ->
          let lns = Option.value (Hashtbl.find_opt readers k) ~default:[] in
          if not (List.mem lane lns) then Hashtbl.replace readers k (lane :: lns))
        fp.reads
    in
    let least_loaded () =
      let best = ref 0 in
      for l = 1 to lanes - 1 do
        if loads.(l) < loads.(!best) then best := l
      done;
      !best
    in
    List.iter
      (fun i ->
        let fp = fps.(i) in
        if conflicts_deferred fp then defer i fp
        else
          match conflict_lanes fp with
          | [] -> place i fp (least_loaded ())
          | [ l ] -> place i fp l
          | _ -> defer i fp)
      !remaining;
    rounds := Array.map List.rev lane_rev :: !rounds;
    remaining := List.rev !deferred
  done;
  { lanes; rounds = List.rev !rounds }

(* ---- validation (test support) ------------------------------------------- *)

let conflict a b =
  let mem k l = List.mem k l in
  List.exists (fun k -> mem k b.writes || mem k b.reads) a.writes
  || List.exists (fun k -> mem k b.writes) a.reads

let validate (fps : footprint array) (p : plan) : (unit, string) result =
  let n = Array.length fps in
  let seen = Array.make n 0 in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    (* position of each txn: (round, lane, slot-in-lane) *)
    let pos = Array.make n (-1, -1, -1) in
    List.iteri
      (fun r round ->
        if Array.length round <> p.lanes then
          raise (Bad (Printf.sprintf "round %d has %d lanes, plan says %d" r (Array.length round) p.lanes));
        Array.iteri
          (fun l txns ->
            List.iteri
              (fun s i ->
                if i < 0 || i >= n then raise (Bad (Printf.sprintf "txn index %d out of range" i));
                seen.(i) <- seen.(i) + 1;
                pos.(i) <- (r, l, s))
              txns)
          round)
      p.rounds;
    Array.iteri
      (fun i c ->
        if c <> 1 then raise (Bad (Printf.sprintf "txn %d scheduled %d times" i c)))
      seen;
    (* Conflicting pairs: same lane or different rounds, and block order
       must agree with schedule order. *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if conflict fps.(i) fps.(j) then begin
          let ri, li, si = pos.(i) and rj, lj, sj = pos.(j) in
          if ri = rj && li <> lj then
            raise (Bad (Printf.sprintf "conflicting txns %d and %d share round %d across lanes %d/%d" i j ri li lj));
          let before = ri < rj || (ri = rj && li = lj && si < sj) in
          if not before then
            raise (Bad (Printf.sprintf "conflicting txns %d and %d are scheduled out of block order" i j))
        end
      done
    done;
    Ok ()
  with Bad m -> err "%s" m

(* ---- cost-model helpers --------------------------------------------------- *)

let ops_of fp = List.length fp.reads + List.length fp.writes

let round_ops (fps : footprint array) (round : round) : int array =
  Array.map (fun txns -> List.fold_left (fun a i -> a + ops_of fps.(i)) 0 txns) round

let critical_ops (fps : footprint array) (p : plan) : int =
  List.fold_left
    (fun acc round -> acc + Array.fold_left max 0 (round_ops fps round))
    0 p.rounds

let stats (p : plan) : string =
  let txns =
    List.fold_left
      (fun a round -> Array.fold_left (fun a l -> a + List.length l) a round)
      0 p.rounds
  in
  Printf.sprintf "%d rounds over %d lanes, %d txns" (List.length p.rounds) p.lanes txns

(** A pipeline stage: one or more logical threads draining a shared work
    queue, with every unit of work holding a CPU core for its service time.

    This is the simulator's building block for the paper's §4.1
    multi-threaded deep pipeline: input-threads, batch-threads ([workers >
    1] models ResilientDB's common lock-free batch queue), the
    worker-thread, execute-thread, output-threads and checkpoint-thread are
    all stages wired together by enqueues.

    A stage worker is {e occupied} from the moment it picks a job until the
    job's completion — including any wait for a CPU core — matching how the
    paper's Fig. 9 reports thread saturation on machines where threads can
    outnumber cores. *)

type t

val create :
  Rdb_des.Sim.t ->
  cpu:Rdb_des.Cpu.t ->
  name:string ->
  ?workers:int ->
  ?probe:(queue_ns:int -> service_ns:int -> at:Rdb_des.Sim.time -> unit) ->
  unit ->
  t
(** [workers] defaults to 1.  [probe], when given, is called once per
    completed job with its time in the stage queue ([queue_ns], enqueue to
    worker pickup), its time in service ([service_ns], pickup to completion
    — includes any wait for a CPU core, per the occupancy convention above)
    and the completion timestamp ([at]).  Absent by default: the fast path
    performs no extra allocation and no call. *)

val name : t -> string
(** The stage's display name (e.g. ["batch"], ["worker"]). *)

val workers : t -> int
(** Number of logical worker threads draining the queue. *)

val enqueue : t -> service:Rdb_des.Sim.time -> (unit -> unit) -> unit
(** Queue one job.  [service] is CPU time; the callback runs at completion
    (on the simulated thread). *)

val queue_length : t -> int
(** Jobs waiting in the stage queue right now (not yet picked by a worker). *)

val jobs_completed : t -> int
(** Jobs fully processed since creation. *)

val occupied_ns : t -> int
(** Cumulative worker-occupied nanoseconds (completed jobs only). *)

val saturation : t -> since_occupied_ns:int -> since_time:Rdb_des.Sim.time -> now:Rdb_des.Sim.time -> float
(** Occupied fraction per worker over a measurement window, as a percentage
    in [0, 100] (100 = every worker busy the whole window). *)

module Sim = Rdb_des.Sim
module Cpu = Rdb_des.Cpu

type job = { service : Sim.time; enqueued : Sim.time; run : unit -> unit }

type t = {
  sim : Sim.t;
  cpu : Cpu.t;
  name : string;
  workers : int;
  probe : (queue_ns:int -> service_ns:int -> at:Sim.time -> unit) option;
  queue : job Queue.t;
  mutable active : int;
  mutable occupied_ns : int;
  mutable jobs_completed : int;
}

let create sim ~cpu ~name ?(workers = 1) ?probe () =
  if workers < 1 then invalid_arg "Stage.create: need at least one worker";
  { sim; cpu; name; workers; probe; queue = Queue.create (); active = 0;
    occupied_ns = 0; jobs_completed = 0 }

let name t = t.name
let workers t = t.workers

let rec start t job =
  t.active <- t.active + 1;
  let started = Sim.now t.sim in
  Cpu.submit t.cpu ~service:job.service (fun () ->
      let finished = Sim.now t.sim in
      t.occupied_ns <- t.occupied_ns + (finished - started);
      t.jobs_completed <- t.jobs_completed + 1;
      (match t.probe with
       | None -> ()
       | Some probe ->
         probe ~queue_ns:(started - job.enqueued)
           ~service_ns:(finished - started) ~at:finished);
      job.run ();
      t.active <- t.active - 1;
      if t.active < t.workers && not (Queue.is_empty t.queue) then start t (Queue.pop t.queue))

let enqueue t ~service run =
  let job = { service; enqueued = Sim.now t.sim; run } in
  if t.active < t.workers then start t job else Queue.push job t.queue

let queue_length t = Queue.length t.queue

let jobs_completed t = t.jobs_completed

let occupied_ns t = t.occupied_ns

let saturation t ~since_occupied_ns ~since_time ~now =
  let elapsed = now - since_time in
  if elapsed <= 0 then 0.0
  else
    100.0
    *. float_of_int (t.occupied_ns - since_occupied_ns)
    /. (float_of_int elapsed *. float_of_int t.workers)

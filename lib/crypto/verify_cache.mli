(** Bounded FIFO memo table for verification results and batch digests.

    The fabric's verify-sharing layer (paper Q2, "avoid redundant crypto"):
    a replica records that it has verified a signature / MAC / digest over
    some exact authenticated bytes, and every later touchpoint of the same
    bytes — execution-time digest checks, re-batching after a view change,
    duplicate or retransmitted messages — costs a table probe instead of a
    cryptographic operation.

    The table holds at most [capacity] entries; insertion beyond that
    evicts the oldest entry (FIFO), so memory is bounded for arbitrarily
    long runs.  Only successful verifications should be inserted: callers
    key on the {e full} authenticated content, so a forgery can never alias
    a cached success. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Lookup; counts a hit or a miss. *)

val mem : 'a t -> string -> bool
(** Membership probe; counts a hit or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (no-op if the key is already present), evicting FIFO at
    capacity.  Does not count as a hit or miss. *)

val size : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val hit_rate : 'a t -> float
val clear : 'a t -> unit

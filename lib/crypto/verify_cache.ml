(* Bounded memo table for verification results and batch digests.

   A replica fabric touches the same authenticated bytes many times: a batch
   digest is checked when the Pre-prepare arrives and again when the batch is
   executed; a client signature is verified at admission and would be
   re-verified when a view change re-batches the request; a retransmitted or
   duplicated protocol message carries a MAC the replica has already checked.
   Caching the *fact* that a given key was verified turns every repeat into a
   hashtable probe (paper Q2: avoid redundant crypto).

   The table is bounded: keys are evicted FIFO once [capacity] entries are
   live, so memory stays O(capacity) regardless of run length.  Only
   positive results are cached — a failed verification is never recorded,
   so a forged message can never hide behind an earlier success with
   different bytes (callers key on the full authenticated content). *)

type 'a t = {
  capacity : int;
  table : (string, 'a) Hashtbl.t;
  order : string Queue.t;  (* insertion order, oldest at the head *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Verify_cache.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (min capacity 1024); order = Queue.create (); hits = 0; misses = 0 }

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some _ as r ->
      t.hits <- t.hits + 1;
      r
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key =
  let found = Hashtbl.mem t.table key in
  if found then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  found

let add t key v =
  if not (Hashtbl.mem t.table key) then begin
    if Hashtbl.length t.table >= t.capacity then begin
      (* Evict until a slot frees up: queue entries whose key was never
         re-added are dropped in insertion order. *)
      let evicted = ref false in
      while not !evicted && not (Queue.is_empty t.order) do
        let oldest = Queue.pop t.order in
        if Hashtbl.mem t.table oldest then begin
          Hashtbl.remove t.table oldest;
          evicted := true
        end
      done
    end;
    Hashtbl.replace t.table key v;
    Queue.push key t.order
  end

let size t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let clear t =
  Hashtbl.reset t.table;
  Queue.clear t.order

(** Calibrated per-operation CPU costs charged by the simulator.

    The paper's testbed is an 8-core 3.8 GHz Cascade Lake Xeon.  The numbers
    here are software-crypto and systems costs representative of that class
    of machine (libsodium/OpenSSL-order figures for crypto; measured-order
    figures for allocation, serialization and storage).  The absolute values
    matter less than their ratios — MAC ≪ ED25519 ≪ RSA, memory ≪ disk —
    because the reproduction targets the paper's relative effects.

    All values are integer nanoseconds of CPU service time. *)

type t = {
  (* Signing and verification, per message. *)
  sign_cmac : int;
  verify_cmac : int;
  sign_ed25519 : int;
  verify_ed25519 : int;
  verify_ed25519_batch : int;
      (** amortized per-signature cost when many client-request signatures
          are verified back to back at the batch-threads (software batch
          verification / pipelining); one-off verifications — e.g. the
          2f+1 shares of a Zyzzyva commit certificate — pay
          [verify_ed25519] *)
  sign_rsa : int;
  verify_rsa : int;
  (* Hashing: fixed setup plus per-byte. *)
  hash_base : int;
  hash_per_byte : int;
  (* Batching: forming a batch costs per-transaction work (object allocation,
     string assembly) plus a fixed part; multi-operation transactions add
     per-operation resource allocation at the batch-threads (the saturation
     mechanism behind the paper's Fig. 11). *)
  batch_base : int;
  batch_per_txn : int;
  batch_per_op : int;
  batch_locality_threshold : int;
      (** transactions per batch beyond which the batch string stops
          fitting the cache hierarchy and per-item cost starts to grow —
          this is what turns the paper's Fig. 10 curve back down at very
          large batches *)
  batch_locality_slope : float;
      (** per-item cost inflation per multiple of the threshold *)
  (* Per-consensus-instance bookkeeping at the worker-thread: instance and
     quorum state allocation, queue management, certificate assembly.
     Independent of batch size — which is exactly why batching amortizes so
     well (Fig. 10) — and independent of n. *)
  consensus_fixed : int;
  (* Execution: per-operation cost against the in-memory store, and the
     per-access penalty of the off-memory (SQLite-class) store. *)
  exec_base : int;
  exec_per_op_mem : int;
  exec_per_op_sqlite : int;
  (* Message handling: enqueue/dequeue/dispatch per message, and
     serialization per byte. *)
  msg_handle : int;
  out_handle : int;  (** per-message dispatch cost at an output-thread *)
  serialize_per_byte : int;
  reply_per_txn : int;  (** building one client response object *)
  (* Thread over-subscription: when more pipeline threads are runnable than
     the machine has cores, context switching and cache pollution inflate
     every job (paper Fig. 16: 1-core machines lose 8.9x, far more than the
     pure capacity ratio).  Service times scale by
     1 + alpha * max(0, runnable - cores) / cores. *)
  context_switch_alpha : float;
  (* Buffer pool: cost of malloc/free vs pool reuse, charged per message
     allocation when pooling is disabled. *)
  alloc_malloc : int;
  alloc_pool : int;
  (* Verify-sharing: probing the bounded digest/verification memo table
     ({!Verify_cache}) when the answer is already known — a hashtable hit
     on a short string key, charged instead of the full crypto operation. *)
  cache_lookup : int;
}

val default : t

val sign_cost : t -> Signer.scheme -> int
val verify_cost : t -> Signer.scheme -> int

val verify_cost_batched : t -> Signer.scheme -> int
(** Amortized verification when signatures are checked in bulk. *)

val hash_cost : t -> bytes:int -> int
(** Cost of one digest over [bytes] input bytes. *)

val batch_cost : t -> txns:int -> int

val execute_cost : t -> sqlite:bool -> ops:int -> int

val serialize_cost : t -> bytes:int -> int

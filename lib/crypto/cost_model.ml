type t = {
  sign_cmac : int;
  verify_cmac : int;
  sign_ed25519 : int;
  verify_ed25519 : int;
  verify_ed25519_batch : int;
  sign_rsa : int;
  verify_rsa : int;
  hash_base : int;
  hash_per_byte : int;
  batch_base : int;
  batch_per_txn : int;
  batch_per_op : int;
  batch_locality_threshold : int;
  batch_locality_slope : float;
  consensus_fixed : int;
  exec_base : int;
  exec_per_op_mem : int;
  exec_per_op_sqlite : int;
  msg_handle : int;
  out_handle : int;
  serialize_per_byte : int;
  reply_per_txn : int;
  context_switch_alpha : float;
  alloc_malloc : int;
  alloc_pool : int;
  cache_lookup : int;
}

(* Representative figures for a 3.8 GHz Cascade Lake core:
   - AES-CMAC over a small message with AES-NI: ~0.4 us
   - ED25519 (libsodium): sign ~21 us, verify ~58 us
   - RSA-1024-class (OpenSSL): sign ~0.6 ms, verify ~25 us
   - SHA-256: ~3 ns/byte software, ~0.2 us fixed
   - malloc/free pair on the hot path: ~0.25 us vs pool reuse ~0.04 us
   - in-memory hashtable op ~0.35 us; SQLite API call round trip ~45 us *)
let default =
  {
    sign_cmac = 400;
    verify_cmac = 400;
    sign_ed25519 = 21_000;
    verify_ed25519 = 20_000;
    verify_ed25519_batch = 8_000;
    sign_rsa = 600_000;
    verify_rsa = 25_000;
    hash_base = 200;
    hash_per_byte = 3;
    batch_base = 1_000;
    batch_per_txn = 3_000;
    batch_per_op = 1_000;
    batch_locality_threshold = 1_000;
    batch_locality_slope = 0.15;
    consensus_fixed = 250_000;
    exec_base = 500;
    exec_per_op_mem = 350;
    exec_per_op_sqlite = 90_000;
    msg_handle = 1_500;
    out_handle = 600;
    serialize_per_byte = 1;
    reply_per_txn = 1_000;
    context_switch_alpha = 0.72;
    alloc_malloc = 250;
    alloc_pool = 40;
    cache_lookup = 30;
  }

let sign_cost t = function
  | Signer.No_sig -> 0
  | Signer.Cmac_aes -> t.sign_cmac
  | Signer.Ed25519 -> t.sign_ed25519
  | Signer.Rsa -> t.sign_rsa

let verify_cost t = function
  | Signer.No_sig -> 0
  | Signer.Cmac_aes -> t.verify_cmac
  | Signer.Ed25519 -> t.verify_ed25519
  | Signer.Rsa -> t.verify_rsa

let verify_cost_batched t = function
  | Signer.No_sig -> 0
  | Signer.Cmac_aes -> t.verify_cmac
  | Signer.Ed25519 -> t.verify_ed25519_batch
  | Signer.Rsa -> t.verify_rsa

let hash_cost t ~bytes = t.hash_base + (t.hash_per_byte * bytes)

let batch_cost t ~txns = t.batch_base + (t.batch_per_txn * txns)

let execute_cost t ~sqlite ~ops =
  t.exec_base + (ops * if sqlite then t.exec_per_op_sqlite else t.exec_per_op_mem)

let serialize_cost t ~bytes = t.serialize_per_byte * bytes

(** The canonical configuration-axis names — the one table every consumer
    derives its labels from.

    Three surfaces spell these names: the [resdb_sim] CLI (flag names and
    [--help], via [Rdb_core.Params.Spec]), the campaign matrix (cell keys
    and the ["campaign-report/v1"] JSON fields, via {!Campaign_report}),
    and the bench figures' config strings.  Before this module each
    surface carried its own string literals, and nothing but review kept
    ["exec_threads"] from drifting into ["exec-threads"] in one of them.
    Now a name is defined exactly once here; CLI flags are derived with
    {!to_flag} (['_'] becomes ['-']), so a rename propagates everywhere
    or nowhere. *)

val protocol : string
val replicas : string
val clients : string
val batch_size : string
val ops_per_txn : string
val payload_bytes : string
val client_scheme : string
val replica_scheme : string
val reply_scheme : string
val sqlite : string
val backend : string
(** ["mem"] | ["durable"] — the campaign's durability axis *)

val data_dir : string
val cores : string
val instances : string
val batch_threads : string
val exec_threads : string
val crashed : string
val view_timeout_ms : string
val family : string
(** fault-schedule family (campaign only) *)

val shards : string

val cross_shard : string
(** cross-shard transaction fraction, in [\[0, 1\]] *)

val warmup : string
val measure : string
val seed : string

val to_flag : string -> string
(** The CLI spelling of an axis name: every ['_'] replaced by ['-'].
    [to_flag exec_threads = "exec-threads"]. *)

type 'a t = {
  buf : 'a option array;
  mutable next : int;  (* next write slot *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { buf = Array.make capacity None; next = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.buf

let length t = t.len

let dropped t = t.dropped

let push t x =
  let cap = Array.length t.buf in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.next) <- Some x;
  t.next <- (t.next + 1) mod cap

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    let idx = (t.next - t.len + i + cap) mod cap in
    match t.buf.(idx) with Some x -> f x | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter t (fun x -> acc := x :: !acc);
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.len <- 0;
  t.dropped <- 0

(** The fault-campaign report schema (["campaign-report/v1"]).

    A campaign sweeps a matrix of deployment axes (protocol, ordering
    instances, execute threads, ledger backend, view timeout) against
    families of randomized fault schedules, runs every cell under many
    seeds, classifies each run into one of five outcome classes, and
    aggregates per-cell statistics.  This module is the neutral schema
    layer — plain records plus a deterministic JSON writer — sitting next
    to {!Bottleneck} (["bottleneck-report/v1"]) so campaign artifacts are
    machine-readable the same way bench artifacts are.  The runner that
    fills it in lives in [Rdb_campaign]; the CI gate that diffs two
    reports lives in [Rdb_gate.Campaign_check].

    Serialization is byte-deterministic: cells keep the order the caller
    built (the runner sorts by axes), floats print via the same ["%.6g"]
    convention as the bench JSON, and nothing depends on hash order —
    two runs of the same matrix and seed produce identical bytes, which
    is what lets the gate and the qcheck determinism property compare
    reports with [String.equal]. *)

val schema : string
(** ["campaign-report/v1"]. *)

type cell = {
  protocol : string;  (** ["pbft"] | ["zyzzyva"] *)
  instances : int;  (** k, concurrent ordering instances *)
  exec_threads : int;  (** E *)
  backend : string;  (** ["mem"] | ["durable"] *)
  view_timeout_ms : float;
  shards : int;  (** consensus groups (1 = the classic single-group cell) *)
  cross_shard : float;  (** cross-shard transaction fraction (0 when [shards = 1]) *)
  family : string;  (** fault-schedule family ({!Rdb_core.Nemesis.Gen} names) *)
  runs : int;  (** seeded runs aggregated into this cell *)
  safe : int;
  live : int;
  degraded : int;
  wedged : int;
  unsafe : int;  (** outcome counts; they sum to [runs] *)
  tput_mean_tps : float;  (** mean measured throughput over the cell's runs *)
  retention_mean : float;
      (** mean throughput retention vs the cell's fault-free twin (the
          [family = "none"] cell with identical axes); 1 for the twin
          itself *)
  recoveries : int;  (** runs that recorded a time-to-recovery *)
  recovery_p50_s : float;
  recovery_p90_s : float;
  recovery_max_s : float;  (** 0 when [recoveries = 0] *)
}

type cliff = {
  axis : string;  (** the axis the two cells differ on *)
  from_value : string;
  to_value : string;  (** the adjacent axis values (low/high side) *)
  cliff_cell : cell;  (** the cell on the wedged side *)
  hazard_from : float;
  hazard_to : float;
      (** (wedged + unsafe) / runs on each side: a cliff is a jump from a
          clean cell to a hazardous one along one axis step *)
}

type t = {
  quick : bool;
  matrix_seed : int64;
  runs_per_cell : int;
  total_runs : int;
  budget_events : int;  (** per-run DES event budget (wedge cutoff) *)
  thresholds : (string * float) list;  (** classifier thresholds, by name *)
  cells : cell list;
  cliffs : cliff list;
}

val hazard_rate : cell -> float
(** (wedged + unsafe) / runs; 0 for an empty cell. *)

val to_json : t -> string
(** The byte-deterministic ["campaign-report/v1"] document. *)

val pp : Format.formatter -> t -> unit
(** Human summary: the outcome table per cell, then the named liveness
    cliffs — the text EXPERIMENTS.md ("Fault campaigns") walks through. *)

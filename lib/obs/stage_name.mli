(** The stable stage-naming scheme shared by traces, CSV headers, the
    breakdown table and the bottleneck report.

    Pipeline stages that exist once per replica carry a bare family name
    (["worker"], ["batch"], ["execute"], ["checkpoint"]); stages that are
    replicated — per-instance workers under multi-primary ordering,
    per-lane execute stages under parallel execution — carry the family
    plus a zero-based index: ["worker-3"], ["execute-1"].  Consumers that
    aggregate or rank stages parse the name back into (family, index)
    with this module instead of assuming positional layouts or prefix
    lengths ([String.sub name 0 7]-style parsing is exactly the fragility
    this replaces). *)

type t = {
  family : string;  (** e.g. ["execute"] for ["execute-1"] *)
  index : int option;  (** [None] for singleton stages *)
}

val parse : string -> t
(** Splits a stage name on its final ['-'] when the suffix is a
    non-negative integer; otherwise the whole name is the family
    (["input-client"] stays one family — its suffix is not a number,
    and ["vc-spam"]-style names are unaffected). *)

val family : string -> string
(** [family "execute-2"] is ["execute"]; [family "worker"] is ["worker"]. *)

val index : string -> int option
(** [index "execute-2"] is [Some 2]; [index "worker"] is [None]. *)

val make : family:string -> index:int -> string
(** [make ~family:"execute" ~index:2] is ["execute-2"] — the one
    encoder, so producers and parsers cannot drift. *)

val tid : base:int -> string -> int
(** Trace-track id for a stage: [base + index] for indexed stages,
    [base] for singletons — replicated stages get adjacent tracks in the
    Chrome trace instead of colliding on one. *)

(** {2 Shard qualification}

    A sharded deployment runs S copies of the whole pipeline; its
    bottleneck report must say {e which shard's} worker saturated.  Stage
    names gain an optional shard prefix ["s<shard>/"] — ['/'] never
    appears in bare stage names, so qualification round-trips and
    unqualified names pass through untouched. *)

val qualify : shard:int -> string -> string
(** [qualify ~shard:2 "worker-3"] is ["s2/worker-3"]. *)

val shard_of : string -> int option
(** [shard_of "s2/worker-3"] is [Some 2]; [None] for unqualified names. *)

val unqualified : string -> string
(** [unqualified "s2/worker-3"] is ["worker-3"]; identity on unqualified
    names. *)

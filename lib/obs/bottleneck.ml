(* Bottleneck attribution from per-stage occupancy + queue/service evidence.
   See the mli; the methodology follows "What Blocks My Blockchain's
   Throughput?" (arXiv:2404.02930). *)

type entry = {
  family : string;
  members : int;
  utilization : float;
  mean_queue_s : float option;
  mean_service_s : float option;
  queue_share : float option;
}

type report = { ranked : entry list; window_s : float }

(* Breakdown labels are "<stage>/<role>"; the stage half may itself be an
   indexed name ("execute-2").  Collapse both layers to the family. *)
let family_of_label label =
  let stage =
    match String.index_opt label '/' with
    | Some i -> String.sub label 0 i
    | None -> label
  in
  Stage_name.family stage

let analyze ?breakdown ~window_s (stages : (string * float) list) : report =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, util) ->
      let fam = Stage_name.family name in
      match Hashtbl.find_opt tbl fam with
      | None ->
        Hashtbl.replace tbl fam (1, util);
        order := fam :: !order
      | Some (n, u) -> Hashtbl.replace tbl fam (n + 1, Float.max u util))
    stages;
  (* Queue/service evidence per family, averaged over matching rows
     weighted by job count. *)
  let evidence fam =
    match breakdown with
    | None -> (None, None, None)
    | Some b ->
      let jobs = ref 0 and q = ref 0.0 and s = ref 0.0 in
      List.iter
        (fun (r : Breakdown.row) ->
          if family_of_label r.Breakdown.label = fam then begin
            let n = Breakdown.jobs r in
            jobs := !jobs + n;
            q := !q +. (Rdb_des.Stats.mean r.Breakdown.queue *. float_of_int n);
            s := !s +. (Rdb_des.Stats.mean r.Breakdown.service *. float_of_int n)
          end)
        (Breakdown.rows b);
      if !jobs = 0 then (None, None, None)
      else begin
        let n = float_of_int !jobs in
        let mq = !q /. n and ms = !s /. n in
        let share = if mq +. ms > 0.0 then Some (mq /. (mq +. ms)) else None in
        (Some mq, Some ms, share)
      end
  in
  let entries =
    List.rev_map
      (fun fam ->
        let members, utilization = Hashtbl.find tbl fam in
        let mean_queue_s, mean_service_s, queue_share = evidence fam in
        { family = fam; members; utilization; mean_queue_s; mean_service_s; queue_share })
      !order
  in
  let ranked =
    List.stable_sort (fun a b -> compare b.utilization a.utilization) entries
  in
  { ranked; window_s }

let saturated (r : report) =
  match r.ranked with [] -> None | e :: _ -> Some e.family

let pp ppf (r : report) =
  Format.fprintf ppf "@[<v>bottleneck report (%.2fs window):@," r.window_s;
  List.iteri
    (fun i e ->
      let verdict =
        if i = 0 then "  <- saturated"
        else if e.utilization >= 90.0 then "  (also hot)"
        else ""
      in
      Format.fprintf ppf "  %-14s %3d thread%s  %5.1f%% busy" e.family e.members
        (if e.members = 1 then " " else "s") e.utilization;
      (match (e.mean_queue_s, e.mean_service_s) with
      | Some q, Some s ->
        Format.fprintf ppf "  queue %7.1fus  service %7.1fus" (q *. 1e6) (s *. 1e6)
      | _ -> ());
      (match e.queue_share with
      | Some share -> Format.fprintf ppf "  (%.0f%% of latency is queueing)" (100.0 *. share)
      | None -> ());
      Format.fprintf ppf "%s@," verdict)
    r.ranked;
  (match saturated r with
  | Some fam ->
    Format.fprintf ppf
      "  verdict: '%s' is the saturated stage — highest occupancy, and work queues there@,\
      \  (methodology: utilization + queueing-delay ranking, arXiv:2404.02930)@]" fam
  | None -> Format.fprintf ppf "  verdict: no stage samples@]")

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(label = "") (r : report) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"bottleneck-report/v1\",\n");
  if label <> "" then
    Buffer.add_string b (Printf.sprintf "  \"label\": \"%s\",\n" (json_escape label));
  Buffer.add_string b (Printf.sprintf "  \"window_s\": %g,\n" r.window_s);
  Buffer.add_string b
    (Printf.sprintf "  \"saturated\": %s,\n"
       (match saturated r with
       | Some f -> Printf.sprintf "\"%s\"" (json_escape f)
       | None -> "null"));
  Buffer.add_string b "  \"stages\": [\n";
  List.iteri
    (fun i e ->
      let opt = function None -> "null" | Some v -> Printf.sprintf "%g" v in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"family\": \"%s\", \"members\": %d, \"utilization_pct\": %g, \
            \"mean_queue_s\": %s, \"mean_service_s\": %s, \"queue_share\": %s}%s\n"
           (json_escape e.family) e.members e.utilization (opt e.mean_queue_s)
           (opt e.mean_service_s) (opt e.queue_share)
           (if i = List.length r.ranked - 1 then "" else ","))
    )
    r.ranked;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(** Per-stage latency breakdown: time-in-queue vs time-in-service.

    Each labelled row accumulates two distributions per completed unit of
    work: how long it waited before a worker picked it up ([queue]) and how
    long the worker then held it ([service], which for pipeline stages
    includes any wait for a CPU core — the paper's Fig. 9 occupancy
    convention).  The cluster feeds rows through stage/CPU probes; the
    resulting table is the per-phase saturation story of paper Q2–Q4 made
    visible per transaction instead of per measurement window. *)

type t

type row = {
  label : string;  (** e.g. ["worker/primary"] *)
  queue : Rdb_des.Stats.t;  (** seconds in queue, one sample per job *)
  service : Rdb_des.Stats.t;  (** seconds in service, one sample per job *)
}

val create : unit -> t
(** An empty breakdown table. *)

val touch : t -> string -> unit
(** Ensures a row exists for [label] without adding samples — rows appear in
    the table in first-touch order, so wiring code can fix a pipeline-shaped
    ordering up front. *)

val add : t -> string -> queue_ns:int -> service_ns:int -> unit
(** Records one completed job under [label]; both durations are nanoseconds
    and are stored as seconds. *)

val jobs : row -> int
(** Jobs recorded in a row. *)

val rows : t -> row list
(** All rows in first-touch order. *)

val find : t -> string -> row option
(** Looks a row up by label. *)

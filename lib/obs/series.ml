module Sim = Rdb_des.Sim

type t = {
  sim : Sim.t;
  interval : Sim.time;
  cols : string list;
  sample : unit -> float array;
  ring : (Sim.time * float array) Ring.t;
  mutable running : bool;
  mutable pending : Sim.event option;
}

let create sim ~interval ~capacity ~columns ~sample =
  if interval <= 0 then invalid_arg "Series.create: interval must be positive";
  if capacity < 1 then invalid_arg "Series.create: capacity must be >= 1";
  {
    sim;
    interval;
    cols = columns;
    sample;
    ring = Ring.create ~capacity;
    running = false;
    pending = None;
  }

let rec tick t () =
  if t.running then begin
    Ring.push t.ring (Sim.now t.sim, t.sample ());
    t.pending <- Some (Sim.schedule t.sim ~after:t.interval (tick t))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    tick t ()
  end

let stop t =
  t.running <- false;
  match t.pending with
  | Some ev ->
    Sim.cancel ev;
    t.pending <- None
  | None -> ()

let length t = Ring.length t.ring

let dropped t = Ring.dropped t.ring

let columns t = t.cols

let rows t = Ring.to_list t.ring

let to_buffer t b =
  Buffer.add_string b "t_s";
  List.iter
    (fun c ->
      Buffer.add_char b ',';
      Buffer.add_string b c)
    t.cols;
  Buffer.add_char b '\n';
  Ring.iter t.ring (fun (ts, values) ->
      Buffer.add_string b (Printf.sprintf "%.6f" (Sim.to_seconds ts));
      Array.iter (fun v -> Buffer.add_string b (Printf.sprintf ",%g" v)) values;
      Buffer.add_char b '\n')

let to_csv_string t =
  let b = Buffer.create (64 + (length t * 64)) in
  to_buffer t b;
  Buffer.contents b

let write_csv t oc =
  let b = Buffer.create (64 + (length t * 64)) in
  to_buffer t b;
  Buffer.output_buffer oc b

module Sim = Rdb_des.Sim

type ev =
  | Complete of { pid : int; tid : int; name : string; ts : Sim.time; dur : Sim.time }
  | Counter of { pid : int; name : string; ts : Sim.time; series : (string * float) list }

type t = {
  sim : Sim.t;
  max_events : int;
  mutable buf : ev array;
  mutable n : int;
  mutable dropped : int;
  mutable instants : (string * Sim.time) list;  (* newest first *)
  mutable meta : (int * int option * string) list;  (* (pid, tid?, name), newest first *)
}

let dummy = Complete { pid = 0; tid = 0; name = ""; ts = 0; dur = 0 }

let create ?(max_events = 200_000) sim =
  if max_events < 1 then invalid_arg "Trace.create: max_events must be >= 1";
  { sim; max_events; buf = [||]; n = 0; dropped = 0; instants = []; meta = [] }

let push t ev =
  if t.n >= t.max_events then t.dropped <- t.dropped + 1
  else begin
    if t.n = Array.length t.buf then begin
      let cap = min t.max_events (max 1024 (2 * Array.length t.buf)) in
      let buf = Array.make cap dummy in
      Array.blit t.buf 0 buf 0 t.n;
      t.buf <- buf
    end;
    t.buf.(t.n) <- ev;
    t.n <- t.n + 1
  end

let set_process_name t ~pid name = t.meta <- (pid, None, name) :: t.meta

let set_thread_name t ~pid ~tid name = t.meta <- (pid, Some tid, name) :: t.meta

let complete t ~pid ~tid ~name ~ts ~dur = push t (Complete { pid; tid; name; ts; dur })

let counter t ~pid ~name ~series = push t (Counter { pid; name; ts = Sim.now t.sim; series })

let instant t ~name = t.instants <- (name, Sim.now t.sim) :: t.instants

let events t = t.n

let dropped t = t.dropped

let instants t = List.length t.instants

(* ---- serialization -------------------------------------------------------- *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Chrome timestamps are microseconds; the DES clock is nanoseconds. *)
let add_ts b (ts : Sim.time) = Buffer.add_string b (Printf.sprintf "%.3f" (float_of_int ts /. 1e3))

let add_event b ~first ev =
  if not first then Buffer.add_string b ",\n";
  (match ev with
  | Complete { pid; tid; name; ts; dur } ->
    Buffer.add_string b {|{"ph":"X","cat":"stage","name":"|};
    add_escaped b name;
    Buffer.add_string b (Printf.sprintf {|","pid":%d,"tid":%d,"ts":|} pid tid);
    add_ts b ts;
    Buffer.add_string b {|,"dur":|};
    add_ts b dur;
    Buffer.add_char b '}'
  | Counter { pid; name; ts; series } ->
    Buffer.add_string b {|{"ph":"C","cat":"sample","name":"|};
    add_escaped b name;
    Buffer.add_string b (Printf.sprintf {|","pid":%d,"ts":|} pid);
    add_ts b ts;
    Buffer.add_string b {|,"args":{|};
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        add_escaped b k;
        Buffer.add_string b (Printf.sprintf {|":%.6g|} v))
      series;
    Buffer.add_string b "}}")

let to_buffer t b =
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n"
  in
  List.iter
    (fun (pid, tid, name) ->
      sep ();
      (match tid with
      | None -> Buffer.add_string b (Printf.sprintf {|{"ph":"M","name":"process_name","pid":%d,"args":{"name":"|} pid)
      | Some tid ->
        Buffer.add_string b
          (Printf.sprintf {|{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"|} pid tid));
      add_escaped b name;
      Buffer.add_string b "\"}}")
    (List.rev t.meta);
  List.iter
    (fun (name, ts) ->
      sep ();
      Buffer.add_string b {|{"ph":"i","s":"g","cat":"fault","name":"|};
      add_escaped b name;
      Buffer.add_string b {|","pid":0,"tid":0,"ts":|};
      add_ts b ts;
      Buffer.add_char b '}')
    (List.rev t.instants);
  for i = 0 to t.n - 1 do
    add_event b ~first:!first t.buf.(i);
    first := false
  done;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n"

let to_string t =
  let b = Buffer.create (256 + (t.n * 96)) in
  to_buffer t b;
  Buffer.contents b

let write t oc =
  let b = Buffer.create (256 + (t.n * 96)) in
  to_buffer t b;
  Buffer.output_buffer oc b

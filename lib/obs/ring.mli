(** Fixed-capacity ring buffer.

    The observability layer samples the running system periodically; a ring
    buffer bounds the memory of arbitrarily long runs while keeping the most
    recent window of samples.  Overwritten (oldest) entries are counted so
    exports can state how much history was shed. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] allocates a buffer holding at most [capacity]
    elements.  Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
(** Maximum number of retained elements. *)

val length : 'a t -> int
(** Elements currently retained (at most {!capacity}). *)

val push : 'a t -> 'a -> unit
(** Appends one element; when full, the oldest element is overwritten and
    counted in {!dropped}. *)

val dropped : 'a t -> int
(** Elements overwritten because the buffer was full. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Visits retained elements oldest-first. *)

val to_list : 'a t -> 'a list
(** Retained elements oldest-first. *)

val clear : 'a t -> unit
(** Empties the buffer; {!dropped} is reset too. *)

(** Chrome [trace_event] collector for the simulated cluster.

    Collects duration ("X"), counter ("C"), instant ("i") and metadata ("M")
    events against the DES clock and serializes them as the JSON object
    format understood by [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}: one process per replica, one track (thread) per pipeline
    stage, counter tracks for queue depths, and globally-scoped instant
    events for injected faults and view changes.

    Duration and counter events are buffered up to [max_events]; once the
    cap is reached further ones are counted in {!dropped} and discarded (the
    earliest window of the run is kept, so the file stays replayable).
    Instant and metadata events are few and are never dropped. *)

type t

val create : ?max_events:int -> Rdb_des.Sim.t -> t
(** [create sim] returns an empty collector stamping events with [sim]'s
    clock.  [max_events] (default 200_000) bounds the buffered duration +
    counter events. *)

val set_process_name : t -> pid:int -> string -> unit
(** Names a process track (one per replica in the cluster wiring). *)

val set_thread_name : t -> pid:int -> tid:int -> string -> unit
(** Names a thread track (one per pipeline stage in the cluster wiring). *)

val complete : t -> pid:int -> tid:int -> name:string -> ts:Rdb_des.Sim.time -> dur:Rdb_des.Sim.time -> unit
(** Records one complete ("X") event: a span of [dur] nanoseconds starting
    at absolute simulation time [ts] on track [(pid, tid)]. *)

val counter : t -> pid:int -> name:string -> series:(string * float) list -> unit
(** Records one counter ("C") sample at the current simulation time; each
    [(key, value)] pair becomes a series of the counter track. *)

val instant : t -> name:string -> unit
(** Records a globally-scoped instant ("i") event at the current simulation
    time — used for faults, view changes and other one-off occurrences. *)

val events : t -> int
(** Buffered duration + counter events. *)

val dropped : t -> int
(** Duration/counter events discarded after [max_events] was reached. *)

val instants : t -> int
(** Recorded instant events (never dropped). *)

val write : t -> out_channel -> unit
(** Serializes the whole collection as a Chrome [trace_event] JSON object
    ([{"traceEvents": [...]}]) with timestamps in microseconds. *)

val to_string : t -> string
(** {!write}, to a string (used by tests and demos). *)

module Stats = Rdb_des.Stats

type row = { label : string; queue : Stats.t; service : Stats.t }

type t = {
  tbl : (string, row) Hashtbl.t;
  mutable order : string list;  (* newest first *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let row t label =
  match Hashtbl.find_opt t.tbl label with
  | Some r -> r
  | None ->
    let r = { label; queue = Stats.create (); service = Stats.create () } in
    Hashtbl.add t.tbl label r;
    t.order <- label :: t.order;
    r

let touch t label = ignore (row t label)

let add t label ~queue_ns ~service_ns =
  let r = row t label in
  Stats.add r.queue (float_of_int queue_ns /. 1e9);
  Stats.add r.service (float_of_int service_ns /. 1e9)

let jobs r = Stats.count r.queue

let rows t = List.rev_map (fun label -> Hashtbl.find t.tbl label) t.order

let find t label = Hashtbl.find_opt t.tbl label

(** Periodic time-series sampling over the DES clock.

    A sampler is a discrete-event process: every [interval] it calls the
    supplied [sample] function and stores the row (timestamp + one float per
    column) in a ring buffer.  Because samples only {e read} cluster state —
    no RNG draws, no mutations — installing a sampler does not perturb the
    simulation: event identity and ordering of the modelled system are
    unchanged, so metrics with sampling on equal metrics with sampling off.

    Rows are exported as CSV (one [t_s] column plus the declared columns). *)

type t

val create :
  Rdb_des.Sim.t ->
  interval:Rdb_des.Sim.time ->
  capacity:int ->
  columns:string list ->
  sample:(unit -> float array) ->
  t
(** [create sim ~interval ~capacity ~columns ~sample] builds a sampler that,
    once {!start}ed, calls [sample] every [interval] nanoseconds and keeps
    the newest [capacity] rows.  [sample] must return one value per column.
    Raises [Invalid_argument] on a non-positive interval or capacity. *)

val start : t -> unit
(** Takes the first sample now and reschedules forever (run the simulation
    with [~until] or {!stop} the sampler to terminate).  Idempotent. *)

val stop : t -> unit
(** Cancels the pending sample event; {!start} may be called again. *)

val length : t -> int
(** Rows currently retained. *)

val dropped : t -> int
(** Rows overwritten because the ring was full. *)

val columns : t -> string list
(** The declared column names. *)

val rows : t -> (Rdb_des.Sim.time * float array) list
(** Retained rows, oldest first. *)

val write_csv : t -> out_channel -> unit
(** Header line ([t_s,<columns>]) followed by one line per retained row. *)

val to_csv_string : t -> string
(** {!write_csv}, to a string (used by tests and demos). *)

(** The bottleneck-shift report: name the saturated pipeline stage.

    PR 4's k-sweep asserted "the bottleneck moved from worker to
    execute" by eyeballing occupancy tables.  This module turns that
    into a ranked, machine-checkable verdict using the methodology of
    "What Blocks My Blockchain's Throughput?" (arXiv:2404.02930): the
    bottleneck is the stage with the highest {e utilization} (busy
    fraction of the measurement window), corroborated by {e queueing
    delay} — at the saturated stage, work arrives faster than it drains,
    so time-in-queue dominates time-in-service, while downstream stages
    sit starved with empty queues.

    Inputs are deliberately neutral (this library only depends on the
    DES): callers pass per-stage occupancy percentages (stage name,
    percent busy) — typically one pair per pipeline thread of the
    primary — plus the optional {!Breakdown} table for queue-vs-service
    evidence.  Replicated stages (["worker-3"], ["execute-1"]) are
    collapsed to their {!Stage_name} family, keeping the verdict stable
    as thread counts change: the whole point is comparing runs where E
    or k differ. *)

type entry = {
  family : string;  (** stage family, e.g. ["execute"] *)
  members : int;  (** threads observed in this family *)
  utilization : float;  (** busiest member, percent of the window *)
  mean_queue_s : float option;  (** mean seconds a job waited, from Breakdown *)
  mean_service_s : float option;  (** mean seconds a job was held *)
  queue_share : float option;
      (** queue / (queue + service); near 1 at a saturated stage, near 0
          at a starved one *)
}

type report = {
  ranked : entry list;  (** most-saturated first *)
  window_s : float;  (** measurement window the occupancies cover *)
}

val analyze :
  ?breakdown:Breakdown.t -> window_s:float -> (string * float) list -> report
(** [analyze ~window_s stages] ranks stage families by utilization.
    [stages] pairs a stage name with its busy-percent over the window;
    multiple members of one family (per-lane execute stages, per-instance
    workers) are folded together, keeping the busiest member's
    utilization.  When [breakdown] is given, each family also carries
    mean queue/service times aggregated over its matching rows (labels
    are parsed as ["<stage>/<role>"]). *)

val saturated : report -> string option
(** The verdict: the top-ranked family, or [None] for an empty report. *)

val pp : Format.formatter -> report -> unit
(** Human-readable table, one line per family plus the verdict line —
    the text EXPERIMENTS.md walks through line by line. *)

val to_json : ?label:string -> report -> string
(** The machine-readable artifact (schema ["bottleneck-report/v1"]):
    the ranked entries, the saturated-stage verdict, and an optional
    run label — written next to the bench JSON so CI can assert the
    shift without parsing human tables. *)

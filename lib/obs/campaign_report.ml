(* The campaign-report/v1 schema: plain records + a deterministic JSON
   writer.  See the interface for the layering rationale. *)

let schema = "campaign-report/v1"

type cell = {
  protocol : string;
  instances : int;
  exec_threads : int;
  backend : string;
  view_timeout_ms : float;
  shards : int;
  cross_shard : float;
  family : string;
  runs : int;
  safe : int;
  live : int;
  degraded : int;
  wedged : int;
  unsafe : int;
  tput_mean_tps : float;
  retention_mean : float;
  recoveries : int;
  recovery_p50_s : float;
  recovery_p90_s : float;
  recovery_max_s : float;
}

type cliff = {
  axis : string;
  from_value : string;
  to_value : string;
  cliff_cell : cell;
  hazard_from : float;
  hazard_to : float;
}

type t = {
  quick : bool;
  matrix_seed : int64;
  runs_per_cell : int;
  total_runs : int;
  budget_events : int;
  thresholds : (string * float) list;
  cells : cell list;
  cliffs : cliff list;
}

let hazard_rate c =
  if c.runs = 0 then 0.0 else float_of_int (c.wedged + c.unsafe) /. float_of_int c.runs

(* ---- JSON ----------------------------------------------------------------- *)

(* Same float convention as the bench JSON: %.6g, degenerate values as 0.
   Cells serialize in list order and every field is written explicitly, so
   the bytes are a pure function of the record. *)
let number v = if Float.is_finite v then Printf.sprintf "%.6g" v else "0"

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cell_json b ?(indent = "    ") (c : cell) =
  Buffer.add_string b
    (Printf.sprintf
       "%s{\"protocol\": \"%s\", \"instances\": %d, \"exec_threads\": %d, \"backend\": \"%s\", \
        \"view_timeout_ms\": %s, \"shards\": %d, \"cross_shard\": %s, \"family\": \"%s\", \
        \"runs\": %d, \"safe\": %d, \"live\": %d, \"degraded\": %d, \"wedged\": %d, \"unsafe\": \
        %d, \"tput_mean_tps\": %s, \"retention_mean\": %s, \"recoveries\": %d, \
        \"recovery_p50_s\": %s, \"recovery_p90_s\": %s, \"recovery_max_s\": %s}"
       indent (escape c.protocol) c.instances c.exec_threads (escape c.backend)
       (number c.view_timeout_ms) c.shards (number c.cross_shard) (escape c.family) c.runs c.safe
       c.live c.degraded c.wedged c.unsafe (number c.tput_mean_tps) (number c.retention_mean)
       c.recoveries (number c.recovery_p50_s) (number c.recovery_p90_s) (number c.recovery_max_s))

let to_json (t : t) =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"%s\",\n" schema);
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" t.quick);
  Buffer.add_string b (Printf.sprintf "  \"matrix_seed\": \"%Ld\",\n" t.matrix_seed);
  Buffer.add_string b (Printf.sprintf "  \"runs_per_cell\": %d,\n" t.runs_per_cell);
  Buffer.add_string b (Printf.sprintf "  \"total_runs\": %d,\n" t.total_runs);
  Buffer.add_string b (Printf.sprintf "  \"budget_events\": %d,\n" t.budget_events);
  Buffer.add_string b "  \"thresholds\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %s" (escape k) (number v)))
    t.thresholds;
  Buffer.add_string b "},\n";
  Buffer.add_string b "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      cell_json b c)
    t.cells;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"cliffs\": [\n";
  List.iteri
    (fun i (cl : cliff) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"axis\": \"%s\", \"from\": \"%s\", \"to\": \"%s\", \"hazard_from\": %s, \
            \"hazard_to\": %s,\n     \"cell\":\n"
           (escape cl.axis) (escape cl.from_value) (escape cl.to_value) (number cl.hazard_from)
           (number cl.hazard_to));
      cell_json b ~indent:"      " cl.cliff_cell;
      Buffer.add_string b "}")
    t.cliffs;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ---- human summary -------------------------------------------------------- *)

let cell_axes_string (c : cell) =
  Printf.sprintf "%s k=%d E=%d %s vt=%gms%s" c.protocol c.instances c.exec_threads c.backend
    c.view_timeout_ms
    (if c.shards > 1 then Printf.sprintf " S=%d x=%g" c.shards c.cross_shard else "")

let pp ppf (t : t) =
  Format.fprintf ppf "@[<v>campaign: %d runs (%d per cell), %d cells, event budget %d%s@ @ "
    t.total_runs t.runs_per_cell (List.length t.cells) t.budget_events
    (if t.quick then " [quick]" else "");
  Format.fprintf ppf "%-38s %-10s %5s %5s %5s %5s %5s %5s %9s %9s@ " "cell" "family" "runs"
    "safe" "live" "degr" "wedge" "unsf" "tput" "retain";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-38s %-10s %5d %5d %5d %5d %5d %5d %9.0f %9.2f@ "
        (cell_axes_string c) c.family c.runs c.safe c.live c.degraded c.wedged c.unsafe
        c.tput_mean_tps c.retention_mean)
    t.cells;
  (match t.cliffs with
  | [] -> Format.fprintf ppf "@ no liveness cliffs: no axis step turns a clean cell hazardous@ "
  | cliffs ->
    Format.fprintf ppf "@ liveness cliffs (axis steps where the wedge rate jumps):@ ";
    List.iter
      (fun (cl : cliff) ->
        Format.fprintf ppf "  %s: %s -> %s lifts hazard %.0f%% -> %.0f%% at %s/%s@ " cl.axis
          cl.from_value cl.to_value (100.0 *. cl.hazard_from) (100.0 *. cl.hazard_to)
          (cell_axes_string cl.cliff_cell) cl.cliff_cell.family)
      cliffs);
  Format.fprintf ppf "@]"

(* Stable stage-name scheme: "family" or "family-<index>".  See the mli. *)

type t = { family : string; index : int option }

let parse (name : string) : t =
  match String.rindex_opt name '-' with
  | None -> { family = name; index = None }
  | Some i -> (
    let suffix = String.sub name (i + 1) (String.length name - i - 1) in
    match int_of_string_opt suffix with
    | Some idx when idx >= 0 && suffix.[0] <> '+' ->
      { family = String.sub name 0 i; index = Some idx }
    | _ -> { family = name; index = None })

let family name = (parse name).family
let index name = (parse name).index
let make ~family ~index = Printf.sprintf "%s-%d" family index

let tid ~base name =
  match parse name with { index = Some i; _ } -> base + i | { index = None; _ } -> base

(* Shard-qualified names: "s<shard>/<stage>".  The separator is '/', which
   never appears in bare stage names, so qualification round-trips. *)

let qualify ~shard name = Printf.sprintf "s%d/%s" shard name

let split_qualified name =
  match String.index_opt name '/' with
  | Some i when i >= 2 && name.[0] = 's' -> (
    match int_of_string_opt (String.sub name 1 (i - 1)) with
    | Some s when s >= 0 -> Some (s, String.sub name (i + 1) (String.length name - i - 1))
    | _ -> None)
  | _ -> None

let shard_of name = Option.map fst (split_qualified name)

let unqualified name =
  match split_qualified name with Some (_, rest) -> rest | None -> name

(* Stable stage-name scheme: "family" or "family-<index>".  See the mli. *)

type t = { family : string; index : int option }

let parse (name : string) : t =
  match String.rindex_opt name '-' with
  | None -> { family = name; index = None }
  | Some i -> (
    let suffix = String.sub name (i + 1) (String.length name - i - 1) in
    match int_of_string_opt suffix with
    | Some idx when idx >= 0 && suffix.[0] <> '+' ->
      { family = String.sub name 0 i; index = Some idx }
    | _ -> { family = name; index = None })

let family name = (parse name).family
let index name = (parse name).index
let make ~family ~index = Printf.sprintf "%s-%d" family index

let tid ~base name =
  match parse name with { index = Some i; _ } -> base + i | { index = None; _ } -> base

module Sim = Rdb_des.Sim

type t = {
  names : string array;
  lat : Sim.time array array;
  bw : float array array;
  placement : int array;  (* shard -> region *)
}

let create ~regions ~latency ~bandwidth_gbps ~placement =
  let r = Array.length regions in
  if r < 1 then invalid_arg "Topology: need at least one region";
  let check_square what m =
    if Array.length m <> r then invalid_arg (Printf.sprintf "Topology: %s matrix must be %dx%d" what r r);
    Array.iter
      (fun row ->
        if Array.length row <> r then
          invalid_arg (Printf.sprintf "Topology: %s matrix must be %dx%d" what r r))
      m
  in
  check_square "latency" latency;
  check_square "bandwidth" bandwidth_gbps;
  for i = 0 to r - 1 do
    for j = 0 to r - 1 do
      if i = j then begin
        if latency.(i).(j) < 0 then invalid_arg "Topology: diagonal latency must be >= 0"
      end
      else if latency.(i).(j) <= 0 then
        invalid_arg "Topology: inter-region latency must be positive";
      if bandwidth_gbps.(i).(j) <= 0.0 then invalid_arg "Topology: bandwidth must be positive"
    done
  done;
  if Array.length placement < 1 then invalid_arg "Topology: need at least one shard";
  Array.iter
    (fun reg ->
      if reg < 0 || reg >= r then invalid_arg "Topology: placement region out of range")
    placement;
  { names = regions; lat = latency; bw = bandwidth_gbps; placement }

let flat ~shards =
  if shards < 1 then invalid_arg "Topology.flat: need at least one shard";
  {
    names = [| "local" |];
    lat = [| [| 0 |] |];
    bw = [| [| Float.infinity |] |];
    placement = Array.make shards 0;
  }

let ring ?(base_latency = Sim.ms 2.0) ?(hop_latency = Sim.ms 3.0) ?(bandwidth_gbps = 1.0)
    ~regions ~shards () =
  if regions < 1 then invalid_arg "Topology.ring: need at least one region";
  if shards < 1 then invalid_arg "Topology.ring: need at least one shard";
  if regions = 1 then flat ~shards
  else begin
    let names = Array.init regions (fun i -> Printf.sprintf "r%d" i) in
    let hops i j =
      let d = abs (i - j) in
      min d (regions - d)
    in
    let lat =
      Array.init regions (fun i ->
          Array.init regions (fun j ->
              if i = j then 0 else base_latency + (hops i j * hop_latency)))
    in
    let bw =
      Array.init regions (fun i ->
          Array.init regions (fun j -> if i = j then Float.infinity else bandwidth_gbps))
    in
    let placement = Array.init shards (fun s -> s mod regions) in
    { names; lat; bw; placement }
  end

let regions t = Array.length t.names
let region_name t i = t.names.(i)
let shards t = Array.length t.placement
let shard_region t s = t.placement.(s)
let latency t i j = t.lat.(i).(j)
let shard_latency t a b = t.lat.(t.placement.(a)).(t.placement.(b))

let shard_bandwidth_gbps t a b =
  let i = t.placement.(a) and j = t.placement.(b) in
  if i = j then Float.infinity else t.bw.(i).(j)

let min_inter_shard_latency t =
  let best = ref max_int in
  let s = shards t in
  for a = 0 to s - 1 do
    for b = 0 to s - 1 do
      if t.placement.(a) <> t.placement.(b) then best := min !best (shard_latency t a b)
    done
  done;
  if !best = max_int then 0 else !best

let pp ppf t =
  Format.fprintf ppf "@[<v>%d region(s), %d shard(s)@," (regions t) (shards t);
  Array.iteri
    (fun s reg -> Format.fprintf ppf "  shard %d -> %s@," s t.names.(reg))
    t.placement;
  Format.fprintf ppf "@]"

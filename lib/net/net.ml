module Sim = Rdb_des.Sim
module Rng = Rdb_des.Rng

type fault_counters = {
  mutable dropped_crash : int;
  mutable dropped_loss : int;
  mutable dropped_partition : int;
  mutable duplicated : int;
}

type 'a t = {
  sim : Sim.t;
  bytes_per_ns : float; (* NIC egress rate *)
  latency : Sim.time;
  jitter : Sim.time;
  rng : Rng.t;
  deliver : dst:int -> src:int -> 'a -> unit;
  nics : Rdb_des.Cpu.t array; (* one single-"core" resource per node: the egress NIC *)
  crashed : bool array;
  (* ---- composable fault model ---- *)
  loss : float array array; (* loss.(src).(dst): per-link drop probability *)
  dup : float array array; (* per-link duplication probability *)
  mutable extra_jitter : Sim.time; (* additional reordering jitter, all links *)
  mutable lossy : bool; (* any loss/dup rate > 0: gates the rng draws *)
  partitions : (string, bool array * bool array) Hashtbl.t;
  (* adversarial interposition: a per-source transform applied to every
     outbound message before it reaches the NIC (None = pass through) *)
  interpose : (dst:int -> 'a -> 'a list) option array;
  counters : fault_counters;
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable suppressed : int;
}

let create sim ~nodes ~bandwidth_gbps ~latency ?(jitter = 0) ~rng ~deliver () =
  if nodes <= 0 then invalid_arg "Net.create: nodes must be positive";
  if bandwidth_gbps <= 0.0 then invalid_arg "Net.create: bandwidth must be positive";
  {
    sim;
    bytes_per_ns = bandwidth_gbps /. 8.0; (* Gbit/s = bytes/ns / 0.125 *)
    latency;
    jitter;
    rng;
    deliver;
    nics = Array.init nodes (fun _ -> Rdb_des.Cpu.create sim ~cores:1);
    crashed = Array.make nodes false;
    loss = Array.init nodes (fun _ -> Array.make nodes 0.0);
    dup = Array.init nodes (fun _ -> Array.make nodes 0.0);
    extra_jitter = 0;
    lossy = false;
    partitions = Hashtbl.create 4;
    interpose = Array.make nodes None;
    counters = { dropped_crash = 0; dropped_loss = 0; dropped_partition = 0; duplicated = 0 };
    messages_sent = 0;
    bytes_sent = 0;
    suppressed = 0;
  }

let nodes t = Array.length t.crashed

let transmission_ns t bytes = int_of_float (float_of_int bytes /. t.bytes_per_ns)

(* ---- fault-model configuration ------------------------------------------- *)

let check_rate what r =
  if r < 0.0 || r >= 1.0 then invalid_arg (Printf.sprintf "Net: %s rate must be in [0, 1)" what)

let refresh_lossy t =
  t.lossy <-
    Array.exists (fun row -> Array.exists (fun r -> r > 0.0) row) t.loss
    || Array.exists (fun row -> Array.exists (fun r -> r > 0.0) row) t.dup

let set_rate matrix ?src ?dst rate =
  let all = Array.length matrix in
  let srcs = match src with Some s -> [ s ] | None -> List.init all Fun.id in
  let dsts = match dst with Some d -> [ d ] | None -> List.init all Fun.id in
  List.iter (fun s -> List.iter (fun d -> matrix.(s).(d) <- rate) dsts) srcs

let set_loss t ?src ?dst rate =
  check_rate "loss" rate;
  set_rate t.loss ?src ?dst rate;
  refresh_lossy t

let set_duplication t ?src ?dst rate =
  check_rate "duplication" rate;
  set_rate t.dup ?src ?dst rate;
  refresh_lossy t

let set_extra_jitter t j =
  if j < 0 then invalid_arg "Net: extra jitter must be non-negative";
  t.extra_jitter <- j

let membership nodes ids =
  let a = Array.make nodes false in
  List.iter
    (fun i ->
      if i < 0 || i >= nodes then invalid_arg "Net.partition: node id out of range";
      a.(i) <- true)
    ids;
  a

let partition t ~name side_a side_b =
  let n = nodes t in
  Hashtbl.replace t.partitions name (membership n side_a, membership n side_b)

let heal t ~name = Hashtbl.remove t.partitions name

let heal_all t = Hashtbl.reset t.partitions

let cut t ~src ~dst =
  Hashtbl.length t.partitions > 0
  && Hashtbl.fold
       (fun _ (a, b) acc -> acc || (a.(src) && b.(dst)) || (b.(src) && a.(dst)))
       t.partitions false

(* ---- transmission ---------------------------------------------------------- *)

(* Drops are decided at the arrival instant: a destination that crashed or
   was partitioned away mid-flight still loses the message, matching real
   networks where the sender cannot tell. *)
let arrival t ~src ~dst payload =
  if t.crashed.(dst) then t.counters.dropped_crash <- t.counters.dropped_crash + 1
  else if cut t ~src ~dst then t.counters.dropped_partition <- t.counters.dropped_partition + 1
  else if t.lossy && t.loss.(src).(dst) > 0.0 && Rng.float t.rng < t.loss.(src).(dst) then
    t.counters.dropped_loss <- t.counters.dropped_loss + 1
  else t.deliver ~dst ~src payload

let propagate t ~src ~dst payload =
  let extra = if t.jitter > 0 then Rng.int t.rng t.jitter else 0 in
  let reorder = if t.extra_jitter > 0 then Rng.int t.rng t.extra_jitter else 0 in
  ignore
    (Sim.schedule t.sim ~after:(t.latency + extra + reorder) (fun () ->
         arrival t ~src ~dst payload))

let send_one t ~src ~dst ~bytes payload =
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + bytes;
  let service = transmission_ns t bytes in
  (* The NIC serializes transmissions FIFO; propagation starts when the
     last byte leaves the wire. *)
  Rdb_des.Cpu.submit t.nics.(src) ~service (fun () ->
      propagate t ~src ~dst payload;
      (* Duplication (e.g. a retransmitting switch): a second copy takes an
         independently jittered path, so it may arrive out of order. *)
      if t.lossy && t.dup.(src).(dst) > 0.0 && Rng.float t.rng < t.dup.(src).(dst) then begin
        t.counters.duplicated <- t.counters.duplicated + 1;
        propagate t ~src ~dst payload
      end)

let send t ~src ~dst ~bytes payload =
  if t.crashed.(src) then t.counters.dropped_crash <- t.counters.dropped_crash + 1
  else
    match t.interpose.(src) with
    | None -> send_one t ~src ~dst ~bytes payload
    | Some f -> (
      (* The adversary rewrites the source's outbound traffic: an empty
         list suppresses the message (Silence), a singleton passes it or a
         tampered copy, several elements fan out (equivocation). *)
      match f ~dst payload with
      | [] -> t.suppressed <- t.suppressed + 1
      | payloads -> List.iter (fun p -> send_one t ~src ~dst ~bytes p) payloads)

let set_interpose t ~src f = t.interpose.(src) <- Some f

let clear_interpose t ~src = t.interpose.(src) <- None

let crash t node = t.crashed.(node) <- true

let recover t node = t.crashed.(node) <- false

let is_crashed t node = t.crashed.(node)

let messages_sent t = t.messages_sent

let bytes_sent t = t.bytes_sent

let messages_dropped t =
  t.counters.dropped_crash + t.counters.dropped_loss + t.counters.dropped_partition

let dropped_by_crash t = t.counters.dropped_crash

let dropped_by_loss t = t.counters.dropped_loss

let dropped_by_partition t = t.counters.dropped_partition

let messages_duplicated t = t.counters.duplicated

let messages_suppressed t = t.suppressed

let nic_busy_ns t node = Rdb_des.Cpu.busy_ns t.nics.(node)

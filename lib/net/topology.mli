(** Geographic topology: named regions, inter-region link parameters, and
    shard-to-region placement.

    The single-cluster simulation models one flat LAN ({!Net} applies one
    latency/bandwidth pair to every link).  A sharded deployment places
    each consensus group in a region and pays region-to-region propagation
    for every cross-shard protocol message, so the 2PC rounds of a
    distributed transaction cost what geography says they cost.  This
    module is the pure data model: the DES wiring lives in
    [Rdb_shard.Deployment].

    All times are {!Rdb_des.Sim.time} nanoseconds; matrices are indexed by
    region id in [\[0, regions)]. *)

type t

val create :
  regions:string array ->
  latency:Rdb_des.Sim.time array array ->
  bandwidth_gbps:float array array ->
  placement:int array ->
  t
(** [create ~regions ~latency ~bandwidth_gbps ~placement] builds a
    topology with [Array.length regions] named regions, one-way
    propagation [latency.(i).(j)] and link bandwidth
    [bandwidth_gbps.(i).(j)] between regions [i] and [j], and shard [s]
    placed in region [placement.(s)].

    Raises [Invalid_argument] when a matrix is not square over the region
    count, a diagonal latency is negative, an off-diagonal latency is
    [<= 0], a bandwidth is [<= 0], or a placement entry is out of range. *)

val flat : shards:int -> t
(** One region ("local") holding every shard: the degenerate topology a
    single-site deployment uses.  Cross-shard messages still exist, they
    just pay no propagation (the {!Net} LAN latency inside each group is
    charged as usual). *)

val ring :
  ?base_latency:Rdb_des.Sim.time ->
  ?hop_latency:Rdb_des.Sim.time ->
  ?bandwidth_gbps:float ->
  regions:int ->
  shards:int ->
  unit ->
  t
(** A ring of [regions] regions ("r0".."rN-1") with shards placed
    round-robin: region-to-region latency is [base_latency + hops *
    hop_latency] where [hops] is the ring distance.  Defaults model a
    metro-area deployment: 2 ms base, 3 ms per hop, 1 Gbps links. *)

val regions : t -> int
val region_name : t -> int -> string
val shards : t -> int

val shard_region : t -> int -> int
(** The region shard [s] is placed in. *)

val latency : t -> int -> int -> Rdb_des.Sim.time
(** One-way propagation between two regions. *)

val shard_latency : t -> int -> int -> Rdb_des.Sim.time
(** One-way propagation between the regions of two shards (0 when they
    share a region). *)

val shard_bandwidth_gbps : t -> int -> int -> float
(** Link bandwidth between the regions of two shards ([infinity] when
    they share a region — intra-region traffic is charged by {!Net}). *)

val min_inter_shard_latency : t -> Rdb_des.Sim.time
(** The smallest one-way latency between two shards in different regions
    — the conservative lookahead a lockstep co-simulation may advance all
    groups by without risking a causality violation.  Returns 0 when all
    shards share one region (the co-simulator then picks its own epoch). *)

val pp : Format.formatter -> t -> unit

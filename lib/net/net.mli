(** Simulated datacenter network with a composable fault model.

    Model (matching the paper's Google-Cloud single-region deployment):
    - every node owns an egress NIC of configurable bandwidth; outgoing
      messages serialize through it FIFO (transmission delay =
      bytes / bandwidth), which is what makes large Pre-prepare messages a
      bandwidth bottleneck (paper Fig. 12);
    - after transmission, a message experiences a propagation latency with
      optional uniform jitter;
    - delivery is per-destination; there is no multicast offload, so a
      broadcast pays [n-1] transmissions, as on real hardware.

    Faults are composable and may be injected mid-run (typically by
    {!Rdb_core.Nemesis} against the DES clock):
    - {e crash faults}: crashed nodes silently drop traffic in both
      directions ({!crash}/{!recover}; the fault model of Fig. 17);
    - {e per-link probabilistic loss} and {e duplication}
      ({!set_loss}/{!set_duplication}), decided per message;
    - {e extra reordering jitter} ({!set_extra_jitter}), an additional
      uniform delay that reorders messages on a link;
    - {e named partitions} ({!partition}/{!heal}): traffic between the two
      sides of any active partition is cut; unnamed nodes are unaffected.

    Every dropped or duplicated message is counted by cause
    ({!messages_dropped}, {!dropped_by_crash}, {!dropped_by_loss},
    {!dropped_by_partition}, {!messages_duplicated}).

    Message payloads are opaque to the network ('a); sizes are explicit. *)

type 'a t

val create :
  Rdb_des.Sim.t ->
  nodes:int ->
  bandwidth_gbps:float ->
  latency:Rdb_des.Sim.time ->
  ?jitter:Rdb_des.Sim.time ->
  rng:Rdb_des.Rng.t ->
  deliver:(dst:int -> src:int -> 'a -> unit) ->
  unit ->
  'a t
(** [deliver] is invoked at the destination's arrival instant. *)

val nodes : 'a t -> int

val send : 'a t -> src:int -> dst:int -> bytes:int -> 'a -> unit
(** Queues the message on [src]'s NIC.  No-op if either side is crashed
    (a crashed source cannot send; traffic to a crashed node vanishes —
    drops for a crashed, partitioned or lossy destination are decided at
    arrival time, so a node that crashes or is partitioned away mid-flight
    still loses the message). *)

val crash : 'a t -> int -> unit

val recover : 'a t -> int -> unit

val is_crashed : 'a t -> int -> bool

(** {2 Fault-model configuration} *)

val set_loss : 'a t -> ?src:int -> ?dst:int -> float -> unit
(** [set_loss t ?src ?dst r] sets the drop probability (in [\[0, 1)]) of the
    links from [src] to [dst]; omitting [src] ([dst]) applies the rate to
    every source (destination), so [set_loss t r] makes the whole fabric
    lossy. *)

val set_duplication : 'a t -> ?src:int -> ?dst:int -> float -> unit
(** Like {!set_loss}, for the probability that a message is delivered
    twice (the duplicate takes an independently jittered path). *)

val set_extra_jitter : 'a t -> Rdb_des.Sim.time -> unit
(** Additional uniform per-message delay on every link; raises effective
    reordering (0 disables). *)

val partition : 'a t -> name:string -> int list -> int list -> unit
(** [partition t ~name side_a side_b] installs (or replaces) a named
    partition cutting all traffic between [side_a] and [side_b] in both
    directions.  Multiple named partitions compose (a message is dropped if
    any active partition cuts its link). *)

val heal : 'a t -> name:string -> unit
(** Removes one named partition; unknown names are a no-op. *)

val heal_all : 'a t -> unit

(** {2 Adversarial interposition}

    A byzantine replica is modeled from {e outside} the consensus core: a
    per-source transform rewrites the node's outbound messages before they
    reach its NIC.  Returning [[]] suppresses the message (selective
    silence), a singleton passes it through or substitutes a tampered
    copy, and several elements fan out conflicting copies (equivocation).
    Each transformed copy pays full NIC transmission like any other
    message.  Installed and removed mid-run by [Rdb_core.Nemesis]
    byzantine strategies. *)

val set_interpose : 'a t -> src:int -> (dst:int -> 'a -> 'a list) -> unit
(** Install (or replace) the outbound transform of one node. *)

val clear_interpose : 'a t -> src:int -> unit
(** Restore the node to honest pass-through behavior. *)

(** {2 Accounting} *)

val messages_sent : 'a t -> int

val bytes_sent : 'a t -> int

val messages_dropped : 'a t -> int
(** Total messages dropped by any fault (crash + loss + partition). *)

val dropped_by_crash : 'a t -> int

val dropped_by_loss : 'a t -> int

val dropped_by_partition : 'a t -> int

val messages_duplicated : 'a t -> int

val messages_suppressed : 'a t -> int
(** Messages erased by an adversarial interposition transform returning
    [[]] (selective silence). *)

val nic_busy_ns : 'a t -> int -> int
(** Cumulative egress transmission time of one node's NIC, for
    bandwidth-utilisation accounting. *)

type conn = { fd : Unix.file_descr; write_lock : Mutex.t }

type t = {
  listener : Unix.file_descr;
  bound_port : int;
  on_message : payload:string -> unit;
  deliver_lock : Mutex.t;
  mutable peers : (int * (string * int)) list;
  outgoing : (int, conn) Hashtbl.t;
  outgoing_lock : Mutex.t;
  mutable readers : Thread.t list;
  mutable accepted : Unix.file_descr list;
  readers_lock : Mutex.t;
  accept_thread : Thread.t option ref;
  mutable running : bool;
  mutable received : int;
  mutable send_failures : int;
}

let reader_loop t fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  (try
     let eof = ref false in
     while t.running && not !eof do
       let n = try Unix.read fd chunk 0 (Bytes.length chunk) with Unix.Unix_error _ -> 0 in
       if n = 0 then eof := true
       else begin
         Buffer.add_subbytes buf chunk 0 n;
         Rdb_consensus.Codec.read_frame buf (fun payload ->
             Mutex.lock t.deliver_lock;
             t.received <- t.received + 1;
             (try t.on_message ~payload
              with e ->
                Mutex.unlock t.deliver_lock;
                raise e);
             Mutex.unlock t.deliver_lock)
       end
     done
   with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  while t.running do
    match Unix.accept t.listener with
    | fd, _ ->
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      let th = Thread.create (reader_loop t) fd in
      Mutex.lock t.readers_lock;
      t.readers <- th :: t.readers;
      t.accepted <- fd :: t.accepted;
      Mutex.unlock t.readers_lock
    | exception Unix.Unix_error _ -> () (* listener closed during shutdown *)
  done

let create ?(host = "127.0.0.1") ?(port = 0) ~on_message () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listener 64;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> failwith "Tcp_transport: unexpected socket address"
  in
  let t =
    {
      listener;
      bound_port;
      on_message;
      deliver_lock = Mutex.create ();
      peers = [];
      outgoing = Hashtbl.create 8;
      outgoing_lock = Mutex.create ();
      readers = [];
      accepted = [];
      readers_lock = Mutex.create ();
      accept_thread = ref None;
      running = true;
      received = 0;
      send_failures = 0;
    }
  in
  t.accept_thread := Some (Thread.create accept_loop t);
  t

let port t = t.bound_port

let set_peers t peers = t.peers <- peers

let add_peer t id addr = t.peers <- (id, addr) :: List.remove_assoc id t.peers

(* Bounded reconnect-with-backoff: cluster nodes start in arbitrary order,
   so the first connect must tolerate a peer that is not listening yet.
   Five attempts, 10/20/40/80 ms apart (~150 ms worst case), then give up
   and let the caller count the failure. *)
let connect_peer host peer_port =
  let rec attempt tries delay =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, peer_port)) with
    | () ->
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Some { fd; write_lock = Mutex.create () }
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if tries <= 1 then None
      else begin
        Thread.delay delay;
        attempt (tries - 1) (delay *. 2.0)
      end
  in
  attempt 5 0.01

let get_conn t ~to_ =
  Mutex.lock t.outgoing_lock;
  let existing = Hashtbl.find_opt t.outgoing to_ in
  let conn =
    match existing with
    | Some c -> Some c
    | None -> (
      match List.assoc_opt to_ t.peers with
      | None -> None
      | Some (host, peer_port) -> (
        match connect_peer host peer_port with
        | Some c ->
          Hashtbl.replace t.outgoing to_ c;
          Some c
        | None -> None))
  in
  Mutex.unlock t.outgoing_lock;
  conn

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then begin
      let n = Unix.write fd b off (Bytes.length b - off) in
      go (off + n)
    end
  in
  go 0

let drop_conn t ~to_ =
  Mutex.lock t.outgoing_lock;
  (match Hashtbl.find_opt t.outgoing to_ with
  | Some c -> (
    Hashtbl.remove t.outgoing to_;
    try Unix.close c.fd with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.unlock t.outgoing_lock

let rec send ?(retried = false) t ~to_ payload =
  match get_conn t ~to_ with
  | None -> false
  | Some conn -> (
    Mutex.lock conn.write_lock;
    let result =
      try
        write_all conn.fd (Rdb_consensus.Codec.frame payload);
        Ok ()
      with Unix.Unix_error _ | Sys_error _ -> Error ()
    in
    Mutex.unlock conn.write_lock;
    match result with
    | Ok () -> true
    | Error () ->
      (* Stale connection (peer restarted): reconnect once. *)
      drop_conn t ~to_;
      if retried then false else send ~retried:true t ~to_ payload)

let send t ~to_ payload =
  let ok = send t ~to_ payload in
  if not ok then t.send_failures <- t.send_failures + 1;
  ok

let broadcast t payload =
  List.fold_left (fun acc (id, _) -> if send t ~to_:id payload then acc + 1 else acc) 0 t.peers

let messages_received t = t.received

let send_failures t = t.send_failures

let shutdown t =
  t.running <- false;
  (* close() does not wake threads blocked in accept()/read(); shutdown()
     does.  Shut the listener and every accepted socket down first, then
     close. *)
  (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  Mutex.lock t.readers_lock;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    t.accepted;
  t.accepted <- [];
  Mutex.unlock t.readers_lock;
  Mutex.lock t.outgoing_lock;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.outgoing;
  Hashtbl.reset t.outgoing;
  Mutex.unlock t.outgoing_lock;
  (match !(t.accept_thread) with Some th -> (try Thread.join th with _ -> ()) | None -> ());
  Mutex.lock t.readers_lock;
  let readers = t.readers in
  t.readers <- [];
  Mutex.unlock t.readers_lock;
  List.iter (fun th -> try Thread.join th with _ -> ()) readers

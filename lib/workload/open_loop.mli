(** The sharded client population: who lives where, and how often a
    transaction leaves its home shard.

    A scale-out deployment serves a population far larger than any one
    consensus group's closed loop — millions of clients, each with a home
    shard.  This module is the pure population model the shard deployment
    ([Rdb_shard.Deployment]) routes with:

    - {e placement}: the population is split over [shards] home shards
      with Zipfian affinity ([affinity_theta = 0] is the uniform split —
      every shard gets exactly [population / shards], remainder to the
      low shards, so a one-shard deployment is {e exactly} the classic
      single-cluster population);
    - {e cross-shard fraction}: each replacement transaction leaves its
      home shard with probability [cross_fraction], touching one other
      {e participant} shard through the 2PC commit protocol.

    Placement is analytic (largest-remainder apportionment of Zipf
    weights), not sampled: computing it for a ten-million-client
    population costs O(shards), and the same parameters always give the
    same split. *)

type t

val create :
  ?affinity_theta:float ->
  population:int ->
  shards:int ->
  cross_fraction:float ->
  unit ->
  t
(** [affinity_theta] is the Zipf skew of shard affinity in [\[0, 1)]
    (default [0.]: uniform — the even split).  [population >= 0],
    [shards >= 1], [cross_fraction] in [\[0, 1\]]; [cross_fraction > 0]
    requires [shards >= 2].  Raises [Invalid_argument] otherwise. *)

val population : t -> int
val shards : t -> int
val cross_fraction : t -> float

val per_shard : t -> int array
(** Clients homed on each shard; entries sum to [population].  With
    [affinity_theta = 0] this is the exact even split. *)

val is_cross : t -> Rdb_des.Rng.t -> bool
(** Draw whether the next replacement transaction is cross-shard
    (probability [cross_fraction]; always [false] with one shard). *)

val pick_participant : t -> Rdb_des.Rng.t -> home:int -> int
(** The other shard a cross-shard transaction touches: uniform over the
    [shards - 1] shards that are not [home]. *)

(* The sharded client population model.  See the mli. *)

module Rng = Rdb_des.Rng

type t = {
  population : int;
  shards : int;
  cross_fraction : float;
  affinity_theta : float;
  per_shard : int array;
}

(* Largest-remainder apportionment of [population] over Zipf weights
   w_i = (i+1)^-theta: deterministic, sums exactly, and theta = 0
   degenerates to the even split with the remainder on the low shards. *)
let apportion ~population ~shards ~theta =
  if shards = 1 then [| population |]
  else begin
    let w = Array.init shards (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let exact = Array.map (fun wi -> float_of_int population *. wi /. total) w in
    let counts = Array.map (fun e -> int_of_float (floor e)) exact in
    let assigned = Array.fold_left ( + ) 0 counts in
    (* Hand the remainder out by descending fractional part; ties break to
       the lower shard index (stable under [List.stable_sort]). *)
    let rem = population - assigned in
    let order =
      List.stable_sort
        (fun (_, fa) (_, fb) -> compare fb fa)
        (Array.to_list (Array.mapi (fun i e -> (i, e -. floor e)) exact))
    in
    List.iteri (fun rank (i, _) -> if rank < rem then counts.(i) <- counts.(i) + 1) order;
    counts
  end

let create ?(affinity_theta = 0.0) ~population ~shards ~cross_fraction () =
  if population < 0 then invalid_arg "Open_loop: population must be >= 0";
  if shards < 1 then invalid_arg "Open_loop: shards must be >= 1";
  if affinity_theta < 0.0 || affinity_theta >= 1.0 then
    invalid_arg "Open_loop: affinity_theta must be in [0, 1)";
  if cross_fraction < 0.0 || cross_fraction > 1.0 then
    invalid_arg "Open_loop: cross_fraction must be in [0, 1]";
  if cross_fraction > 0.0 && shards < 2 then
    invalid_arg "Open_loop: cross_fraction > 0 needs shards >= 2";
  {
    population;
    shards;
    cross_fraction;
    affinity_theta;
    per_shard = apportion ~population ~shards ~theta:affinity_theta;
  }

let population t = t.population
let shards t = t.shards
let cross_fraction t = t.cross_fraction
let per_shard t = Array.copy t.per_shard

let is_cross t rng =
  t.cross_fraction > 0.0 && t.shards > 1 && Rng.float rng < t.cross_fraction

let pick_participant t rng ~home =
  if t.shards < 2 then invalid_arg "Open_loop.pick_participant: needs shards >= 2";
  let r = Rng.int rng (t.shards - 1) in
  if r >= home then r + 1 else r

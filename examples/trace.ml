(* Pipeline observability end to end: span tracing, the per-stage
   queue/service breakdown, and Chrome trace export — on a small simulated
   cluster that loses its primary mid-run.

   Part 1 shows that tracing is free in the modelled system: the same
   configuration run with and without instrumentation produces identical
   metrics (the probes and the sampler only read simulation state).
   Part 2 prints where each transaction's latency went (span phases and the
   stage-by-stage queue vs service split).
   Part 3 writes the Chrome trace_event JSON and time-series CSV and checks
   their shape — load the JSON in chrome://tracing or ui.perfetto.dev to
   see one process per replica, one track per pipeline stage, and instant
   events marking the crash and the view change.

   Run with:  dune exec examples/trace.exe *)

module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Nemesis = Rdb_core.Nemesis
module Stats = Rdb_des.Stats

let p_base =
  Params.default
  |> Params.with_n 4
  |> Params.with_clients 4_000
  |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 2 })
  |> Params.with_batch_size 50
  |> Params.map_consensus (fun c -> { c with Params.Consensus.checkpoint_txns = 400 })
  |> Params.with_client_timeout (Rdb_des.Sim.ms 200.0)
  |> Params.with_view_timeout (Rdb_des.Sim.ms 100.0)
  |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.3)
       ~measure:(Rdb_des.Sim.seconds 0.7)
  |> Params.with_nemesis (Nemesis.crash_primary_at (Rdb_des.Sim.ms 500.0))

let () =
  (* ---- Part 1: tracing changes nothing ---------------------------------- *)
  print_endline "== tracing neutrality: same run with observability off and on ==";
  let plain = Cluster.run p_base in
  let traced = Cluster.run (Params.with_trace true p_base) in
  Printf.printf "off: %8.1fK txn/s, %d txns, p99 %.4fs\n"
    (plain.Metrics.throughput_tps /. 1000.0)
    plain.Metrics.completed_txns
    (Stats.percentile plain.Metrics.latency 99.0);
  Printf.printf "on:  %8.1fK txn/s, %d txns, p99 %.4fs\n"
    (traced.Metrics.throughput_tps /. 1000.0)
    traced.Metrics.completed_txns
    (Stats.percentile traced.Metrics.latency 99.0);
  assert (plain.Metrics.throughput_tps = traced.Metrics.throughput_tps);
  assert (plain.Metrics.completed_txns = traced.Metrics.completed_txns);
  assert (Stats.mean plain.Metrics.latency = Stats.mean traced.Metrics.latency);
  assert (plain.Metrics.messages_sent = traced.Metrics.messages_sent);
  print_endline "metrics identical";

  (* ---- Part 2: where the latency lives ----------------------------------- *)
  print_endline "\n== span phases (per transaction, telescoping to end-to-end) ==";
  Format.printf "%a@." Metrics.pp_spans traced;
  (* The telescoping invariant, checked on the means: the four phases
     partition each transaction's latency, so their means sum to the
     end-to-end mean. *)
  let phase_sum =
    List.fold_left (fun acc s -> acc +. Stats.mean s.Metrics.time) 0.0 traced.Metrics.spans
  in
  let e2e = Stats.mean traced.Metrics.latency in
  assert (abs_float (phase_sum -. e2e) < 1e-9 +. (1e-9 *. abs_float e2e));
  Printf.printf "phase means sum to end-to-end mean: %.6fs = %.6fs\n" phase_sum e2e;
  print_endline "\n== per-stage breakdown (time-in-queue vs time-in-service) ==";
  Format.printf "%a@." Metrics.pp_breakdown traced;

  (* ---- Part 3: export the Chrome trace + time-series ---------------------- *)
  print_endline "== Chrome trace_event export ==";
  let json_path = Filename.temp_file "rdb_trace" ".json" in
  let csv_path = Filename.temp_file "rdb_series" ".csv" in
  let m =
    Cluster.run
      (Params.map_obs
         (fun o ->
           { o with Params.Obs.trace_out = Some json_path; trace_csv = Some csv_path })
         p_base)
  in
  (match m.Metrics.faults.Metrics.time_to_recovery_s with
  | Some s -> Printf.printf "primary crash @0.5s, recovered in %.3fs\n" s
  | None -> print_endline "primary crash @0.5s, no recovery recorded");
  let read_all path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let json = read_all json_path in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  assert (contains json "\"traceEvents\"");
  assert (contains json "\"ph\":\"X\"");  (* stage duration events *)
  assert (contains json "\"ph\":\"i\"");  (* the crash / view-change instants *)
  assert (contains json "\"ph\":\"M\"");  (* process / thread names *)
  assert (contains json "crash primary");
  assert (contains json "view change");
  let csv = read_all csv_path in
  assert (contains csv "t_s,primary_pending");
  Printf.printf "trace JSON: %d bytes (replicas x stages as tracks), series CSV: %d rows\n"
    (String.length json)
    (List.length (String.split_on_char '\n' csv) - 1);
  Sys.remove json_path;
  Sys.remove csv_path;
  print_endline "trace: OK"

(* Byzantine replicas, three ways:

   1. A lying primary (simulated cluster): mid-run the primary starts
      equivocating — conflicting proposals for the same slot to different
      replica subsets.  Honest replicas spot the contradiction (two
      pre-prepares signed by one primary), echo the evidence, and depose it
      with a view change.  Safety holds throughout; throughput dips and
      recovers.

   2. A forging backup under Zyzzyva vs PBFT: one replica forges the MAC on
      everything it sends.  PBFT's 2f/2f+1 quorums never notice three
      honest replicas are enough.  Zyzzyva's fast path needs all 3f+1
      matching speculative replies, so a single liar pushes every batch
      through the commit-certificate slow path — the paper's Fig. 12
      asymmetry.

   3. View-change spam: a backup broadcasts bogus view changes every 2 ms.
      The per-sender rate limit clips it, and one spammer stays below the
      f+1 join threshold: the view never moves.

   Run with:  dune exec examples/byzantine.exe *)

module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Nemesis = Rdb_core.Nemesis
module Sim = Rdb_des.Sim

let base =
  Params.default
  |> Params.with_n 4
  |> Params.with_clients 400
  |> Params.map_topology (fun t -> { t with Params.Topology.client_machines = 1 })
  |> Params.with_batch_size 20
  |> Params.map_consensus (fun c ->
         { c with Params.Consensus.max_inflight_batches = 16; checkpoint_txns = 400 })
  |> Params.with_client_timeout (Sim.ms 40.0)
  |> Params.with_view_timeout (Sim.ms 30.0)
  |> Params.with_windows ~warmup:(Sim.seconds 0.2) ~measure:(Sim.seconds 0.8)

let () =
  (* ---- 1. The equivocating primary is caught and deposed ---------------- *)
  print_endline "== equivocating primary: caught, deposed, survived (PBFT, n=4) ==";
  let healthy = Cluster.run base in
  let attacked =
    Params.with_nemesis
      (Nemesis.equivocate_window ~from_:(Sim.ms 250.0) ~until:(Sim.seconds 2.0) 0)
      base
  in
  let c = Cluster.create attacked in
  let m = Cluster.measure c in
  let f = m.Metrics.faults in
  Printf.printf "healthy:     %8.1fK txn/s\n" (healthy.Metrics.throughput_tps /. 1000.0);
  Printf.printf "under attack:%8.1fK txn/s  (%.0f%% of healthy)\n"
    (m.Metrics.throughput_tps /. 1000.0)
    (100.0 *. m.Metrics.throughput_tps /. healthy.Metrics.throughput_tps);
  Printf.printf "  equivocations detected %d, view changes %d\n" f.Metrics.equivocations_detected
    f.Metrics.view_changes;
  assert (f.Metrics.equivocations_detected > 0);
  assert (f.Metrics.view_changes >= 1);
  assert (m.Metrics.throughput_tps > 0.5 *. healthy.Metrics.throughput_tps);
  (match Cluster.check_safety c with
  | Ok () -> print_endline "  safety held: no two replicas committed different batches"
  | Error e -> failwith e);

  (* ---- 2. One forging backup: PBFT shrugs, Zyzzyva collapses ------------ *)
  print_endline "\n== one MAC-forging backup: PBFT vs Zyzzyva (Fig. 12) ==";
  let liar p =
    Params.with_nemesis
      (Nemesis.corrupt_mac_window ~from_:(Sim.ms 50.0) ~until:(Sim.seconds 2.0) 3 1.0)
      p
  in
  let show name p =
    let m = Cluster.run p in
    Printf.printf "%-24s %8.1fK txn/s  (fast %d, cert %d, forgeries rejected %d)\n" name
      (m.Metrics.throughput_tps /. 1000.0)
      m.Metrics.fast_path_txns m.Metrics.cert_path_txns m.Metrics.faults.Metrics.rejected_forgeries;
    m
  in
  let p_ok = show "PBFT, healthy" base in
  let p_liar = show "PBFT, 1 liar" (liar base) in
  let zyz = Params.with_protocol Params.Zyzzyva base in
  let z_ok = show "Zyzzyva, healthy" zyz in
  let z_liar = show "Zyzzyva, 1 liar" (liar zyz) in
  assert (p_liar.Metrics.throughput_tps > 0.7 *. p_ok.Metrics.throughput_tps);
  assert (z_ok.Metrics.fast_path_txns > 0);
  (* Every attacked Zyzzyva batch waits out the client timer and closes via
     commit certificates: the fast path is gone. *)
  assert (z_liar.Metrics.fast_path_txns = 0);
  assert (z_liar.Metrics.cert_path_txns > 0);
  Printf.printf "PBFT keeps %.0f%%; Zyzzyva's fast path went from %d to %d batches\n"
    (100.0 *. p_liar.Metrics.throughput_tps /. p_ok.Metrics.throughput_tps)
    z_ok.Metrics.fast_path_txns z_liar.Metrics.fast_path_txns;

  (* ---- 3. View-change spam is rate-limited ------------------------------ *)
  print_endline "\n== view-change spam: clipped by the per-sender budget ==";
  let spammed =
    Cluster.run
      (Params.with_nemesis
         (Nemesis.view_change_spam_window ~from_:(Sim.ms 100.0) ~until:(Sim.ms 700.0) 3
            ~period:(Sim.ms 2.0))
         base)
  in
  let f = spammed.Metrics.faults in
  Printf.printf "throughput %8.1fK txn/s, spam suppressed %d, view changes %d\n"
    (spammed.Metrics.throughput_tps /. 1000.0)
    f.Metrics.vc_spam_suppressed f.Metrics.view_changes;
  assert (f.Metrics.vc_spam_suppressed > 0);
  (* One spammer is below the f+1 join threshold: the view never moved. *)
  assert (f.Metrics.view_changes = 0);
  assert (spammed.Metrics.throughput_tps > 0.0);
  print_endline "byzantine: OK"

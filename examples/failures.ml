(* Fault injection, two ways:

   1. Protocol level (real cores, embeddable runtime): the PBFT primary
      crashes; replicas run the view-change sub-protocol, a new primary
      takes over, and in-flight plus new requests still execute once each.

   2. Performance level (simulated cluster): the paper's Fig. 17 — one
      crashed backup barely dents PBFT but collapses Zyzzyva, whose clients
      can no longer collect all 3f+1 speculative replies and fall back to
      commit certificates after a timeout.

   3. Nemesis schedule (simulated cluster): the primary crashes mid-run;
      clients retransmit with backoff, backups suspect the primary, the
      view change installs a new one and throughput recovers — with the dip
      and time-to-recovery measured.

   Run with:  dune exec examples/failures.exe *)

module Rt = Rdb_core.Local_runtime
module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Nemesis = Rdb_core.Nemesis
module Mem_store = Rdb_storage.Mem_store

let apply ~replica:_ store ~client:_ ~payload =
  Mem_store.put store payload "done";
  "ok:" ^ payload

let () =
  (* ---- 1. Primary crash and view change ------------------------------- *)
  print_endline "== primary crash -> view change (real protocol cores) ==";
  let rt = Rt.create ~config:{ Rt.default_config with Rt.batch_size = 2 } ~apply () in
  ignore (Rt.submit rt ~client:1 ~payload:"before-crash-1");
  ignore (Rt.submit rt ~client:2 ~payload:"before-crash-2");
  Rt.run rt;
  Printf.printf "view %d, primary %d, completed %d\n" (Rt.view rt) (Rt.primary rt)
    (List.length (Rt.completed rt));

  (* The primary goes down; a couple of requests are pending behind it. *)
  ignore (Rt.submit rt ~client:3 ~payload:"inflight-1");
  Rt.crash rt 0;
  print_endline "!! primary (replica 0) crashed; backups time out and start a view change";
  Rt.force_view_change rt;
  Rt.run rt;
  Printf.printf "view %d, primary %d\n" (Rt.view rt) (Rt.primary rt);
  assert (Rt.view rt = 1);
  assert (Rt.primary rt = 1);

  (* Work continues under the new primary. *)
  ignore (Rt.submit rt ~client:4 ~payload:"after-viewchange-1");
  ignore (Rt.submit rt ~client:5 ~payload:"after-viewchange-2");
  Rt.flush rt;
  Rt.run rt;
  Printf.printf "completed after recovery: %d\n" (List.length (Rt.completed rt));
  (match Rt.verify rt with
  | Ok () -> print_endline "survivors agree; ledgers verify across the view change"
  | Error e -> failwith e);
  List.iter
    (fun r ->
      assert (Mem_store.mem (Rt.store rt r) "after-viewchange-1");
      assert (Mem_store.mem (Rt.store rt r) "before-crash-1"))
    [ 1; 2; 3 ];

  (* ---- 2. Backup crash: PBFT vs Zyzzyva (simulated, Fig. 17) ----------- *)
  print_endline "\n== one crashed backup: PBFT vs Zyzzyva (simulated 16-replica cluster) ==";
  let base =
    Params.default
    |> Params.with_clients 20_000
    |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.3)
         ~measure:(Rdb_des.Sim.seconds 0.4)
  in
  let show name p =
    let m = Cluster.run p in
    Printf.printf "%-28s %8.1fK txn/s  (fast-path %d, cert-path %d)\n" name
      (m.Metrics.throughput_tps /. 1000.0)
      m.Metrics.fast_path_txns m.Metrics.cert_path_txns;
    m.Metrics.throughput_tps
  in
  let p_ok = show "PBFT, healthy" base in
  let p_crash = show "PBFT, 1 backup down" (Params.with_crashed_backups 1 base) in
  let z_ok = show "Zyzzyva, healthy" (Params.with_protocol Params.Zyzzyva base) in
  let z_crash =
    show "Zyzzyva, 1 backup down"
      (base
      |> Params.with_protocol Params.Zyzzyva
      |> Params.with_crashed_backups 1
      |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 2.0)
           ~measure:(Rdb_des.Sim.seconds 1.5))
  in
  Printf.printf "PBFT keeps %.0f%% of its throughput; Zyzzyva keeps %.1f%%\n"
    (100.0 *. p_crash /. p_ok)
    (100.0 *. z_crash /. z_ok);
  assert (p_crash > 0.8 *. p_ok);
  assert (z_crash < 0.2 *. z_ok);

  (* ---- 3. Mid-run primary crash (nemesis schedule) ---------------------- *)
  print_endline "\n== mid-run primary crash: liveness under load (simulated, nemesis) ==";
  let faulted =
    base
    |> Params.with_clients 4_000
    |> Params.with_client_timeout (Rdb_des.Sim.ms 200.0)
    |> Params.with_view_timeout (Rdb_des.Sim.ms 100.0)
    |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.3)
         ~measure:(Rdb_des.Sim.seconds 1.2)
  in
  let healthy = Cluster.run faulted in
  let crashed =
    Cluster.run (Params.with_nemesis (Nemesis.crash_primary_at (Rdb_des.Sim.ms 500.0)) faulted)
  in
  let f = crashed.Metrics.faults in
  Printf.printf "healthy:               %8.1fK txn/s\n" (healthy.Metrics.throughput_tps /. 1000.0);
  Printf.printf "primary crash @ 0.5s:  %8.1fK txn/s  (dip: %.0f%% of healthy)\n"
    (crashed.Metrics.throughput_tps /. 1000.0)
    (100.0 *. crashed.Metrics.throughput_tps /. healthy.Metrics.throughput_tps);
  let ttr = match f.Metrics.time_to_recovery_s with Some s -> s | None -> nan in
  Printf.printf "  view changes %d, retransmissions %d, time-to-recovery %.3fs\n"
    f.Metrics.view_changes f.Metrics.retransmissions ttr;
  assert (f.Metrics.view_changes >= 1);
  assert (f.Metrics.retransmissions > 0);
  assert (f.Metrics.time_to_recovery_s <> None);
  assert (crashed.Metrics.throughput_tps > 0.0);
  assert (crashed.Metrics.throughput_tps < healthy.Metrics.throughput_tps);
  print_endline "failures: OK"

(* Recovery and durability, three ways:

   1. Protocol level (real cores, embeddable runtime): a backup crashes,
      misses a stretch of batches, and rejoins — it broadcasts a
      State_request and a live peer answers with the stable-checkpoint
      certificate, the retained chain segment and an application-state
      export.  One round trip instead of replaying the gap.

   2. Durability (same runtime): the whole cluster shuts down and restarts
      over the same data directory; the WAL + B-tree block stores
      crash-recover and ordering resumes at the persisted tip.

   3. Performance level (simulated cluster): a nemesis schedule crashes a
      backup mid-run and recovers it; the rejoining replica reaches the
      cluster's current height through the same state-transfer protocol,
      with the time-to-catch-up measured.

   Run with:  dune exec examples/recovery.exe *)

module Rt = Rdb_core.Local_runtime
module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Nemesis = Rdb_core.Nemesis
module Ledger = Rdb_chain.Ledger
module Mem_store = Rdb_storage.Mem_store

let apply ~replica:_ store ~client:_ ~payload =
  Mem_store.put store payload "done";
  "ok:" ^ payload

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rdb-recovery-example-%d" (Unix.getpid ()))
  in
  (* ---- 1. Crash, miss work, rejoin via state transfer ------------------- *)
  print_endline "== backup crash -> rejoin via checkpoint-driven state transfer ==";
  let cfg =
    {
      Rt.default_config with
      Rt.batch_size = 1;
      checkpoint_interval = 4;
      durable_dir = Some dir;
    }
  in
  let rt = Rt.create ~config:cfg ~apply () in
  for i = 1 to 6 do
    ignore (Rt.submit rt ~client:1 ~payload:(Printf.sprintf "pre-crash-%d" i))
  done;
  Rt.run rt;
  Rt.crash rt 3;
  print_endline "!! replica 3 crashed; the cluster keeps ordering without it";
  for i = 1 to 8 do
    ignore (Rt.submit rt ~client:2 ~payload:(Printf.sprintf "missed-%d" i))
  done;
  Rt.run rt;
  Printf.printf "replica 3 is %d batches behind (applied %d vs %d)\n"
    (Rt.applied rt 0 - Rt.applied rt 3)
    (Rt.applied rt 3) (Rt.applied rt 0);
  Rt.recover rt 3;
  Rt.run rt;
  Printf.printf "recovered: replica 3 applied %d — one State_request round trip, no replay\n"
    (Rt.applied rt 3);
  assert (Rt.applied rt 3 = Rt.applied rt 0);
  assert (Mem_store.mem (Rt.store rt 3) "missed-8");
  (match Rt.verify rt with
  | Ok () -> print_endline "all replicas agree; ledgers verify after the transfer"
  | Error e -> failwith e);

  (* ---- 2. Restart the whole cluster from its durable stores ------------- *)
  print_endline "\n== restart from disk: WAL + B-tree stores crash-recover ==";
  let tip_before = Ledger.next_seq (Rt.ledger rt 0) - 1 in
  Rt.close rt;
  let rt2 = Rt.create ~config:cfg ~apply () in
  let tip_after = Ledger.next_seq (Rt.ledger rt2 0) - 1 in
  Printf.printf "chain tip: %d before shutdown, %d after reopen\n" tip_before tip_after;
  assert (tip_after = tip_before);
  ignore (Rt.submit rt2 ~client:3 ~payload:"after-restart");
  Rt.flush rt2;
  Rt.run rt2;
  Printf.printf "ordering resumed: next batch took seq %d\n" (Rt.applied rt2 0);
  assert (Rt.applied rt2 0 = tip_after + 1);
  (match Rt.verify rt2 with
  | Ok () -> print_endline "chains verify across the restart"
  | Error e -> failwith e);
  Rt.close rt2;
  rm_rf dir;

  (* ---- 3. Simulated cluster: mid-run crash + recover (durable) ---------- *)
  print_endline "\n== simulated cluster: nemesis crash + recover, durable backend ==";
  let victim = Params.default.Params.n - 1 in
  let p =
    Params.default
    |> Params.with_clients 4_000
    |> Params.with_durable true
    |> Params.with_client_timeout (Rdb_des.Sim.ms 200.0)
    |> Params.with_view_timeout (Rdb_des.Sim.ms 100.0)
    |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.3)
         ~measure:(Rdb_des.Sim.seconds 1.0)
    |> Params.with_nemesis
         [
           Nemesis.at_ms 300.0 (Nemesis.Crash victim);
           Nemesis.at_ms 700.0 (Nemesis.Recover victim);
         ]
  in
  let c = Cluster.create p in
  let m = Cluster.measure c in
  let f = m.Metrics.faults in
  Printf.printf "throughput %.1fK txn/s; state transfers %d%s\n"
    (m.Metrics.throughput_tps /. 1000.0)
    f.Metrics.state_transfers
    (match f.Metrics.time_to_catch_up_s with
    | Some s -> Printf.sprintf ", caught up in %.3fs" s
    | None -> "");
  Printf.printf "replica %d height %d, gap to healthiest: %d blocks\n" victim
    (Cluster.ledger_height c victim)
    (Cluster.ledger_gap c victim);
  assert (f.Metrics.state_transfers >= 1);
  assert (f.Metrics.time_to_catch_up_s <> None);
  assert (Cluster.ledger_gap c victim <= 1);
  (match Cluster.check_safety c with
  | Ok () -> print_endline "cross-replica safety check passes"
  | Error e -> failwith e);
  print_endline "recovery: OK"

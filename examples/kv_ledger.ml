(* A YCSB-style benchmark run against the full simulated ResilientDB
   deployment, plus a durability pass through the real file-backed B-tree —
   the "evaluate a deployment before buying the machines" use case.

   Part 1 sizes a 16-replica cluster with the paper's standard configuration
   and prints throughput / latency / pipeline saturation.
   Part 2 replays a real YCSB transaction stream through the embeddable
   runtime with B-tree-backed persistence of the executed ledger.

   Run with:  dune exec examples/kv_ledger.exe *)

module Params = Rdb_core.Params
module Cluster = Rdb_core.Cluster
module Metrics = Rdb_core.Metrics
module Rt = Rdb_core.Local_runtime
module Ycsb = Rdb_workload.Ycsb
module Mem_store = Rdb_storage.Mem_store
module Btree = Rdb_storage.Btree
module Ledger = Rdb_chain.Ledger
module Block = Rdb_chain.Block

let () =
  (* ---- Part 1: capacity planning on the simulator --------------------- *)
  print_endline "== sizing a 16-replica deployment (simulated, paper-standard config) ==";
  let p =
    Params.default
    |> Params.with_clients 40_000
    |> Params.with_windows ~warmup:(Rdb_des.Sim.seconds 0.3)
         ~measure:(Rdb_des.Sim.seconds 0.5)
  in
  let m = Cluster.run p in
  Format.printf "%a@." Metrics.pp m;
  let primary = List.find (fun r -> r.Metrics.is_primary) m.Metrics.replicas in
  Format.printf "primary pipeline:";
  List.iter (fun s -> Format.printf " %s=%.0f%%" s.Metrics.stage s.Metrics.percent) primary.Metrics.stages;
  Format.printf "@.";

  (* ---- Part 2: a real YCSB stream with durable blocks ------------------ *)
  print_endline "\n== executing a real YCSB stream with B-tree-backed durability ==";
  let workload = Ycsb.create ~records:2_000 ~field_size:32 ~ops_per_txn:2 ~seed:99L () in
  let apply ~replica:_ store ~client:_ ~payload =
    (* payload: "key=value" pairs separated by '&'. *)
    String.split_on_char '&' payload
    |> List.iter (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
             Mem_store.put store (String.sub kv 0 i)
               (String.sub kv (i + 1) (String.length kv - i - 1))
           | None -> ());
    "applied"
  in
  let rt = Rt.create ~config:{ Rt.default_config with Rt.batch_size = 20 } ~apply () in
  for _ = 1 to 200 do
    let txn = Ycsb.next_txn workload ~client:7 in
    let payload =
      txn.Ycsb.ops
      |> List.filter_map (function
           | Ycsb.Write { key; value } -> Some (key ^ "=" ^ value)
           | Ycsb.Read _ -> None)
      |> String.concat "&"
    in
    ignore (Rt.submit rt ~client:txn.Ycsb.client ~payload)
  done;
  Rt.flush rt;
  Rt.run rt;
  Printf.printf "executed %d transactions across 4 replicas; state digest match: %b\n"
    (List.length (Rt.completed rt))
    (Rt.verify rt = Ok ());

  (* Persist replica 0's blockchain into a real paged B-tree and audit it
     back from disk. *)
  let path = Filename.temp_file "kv_ledger" ".db" in
  let bt = Btree.open_file path in
  Ledger.iter_retained (Rt.ledger rt 0) (fun b ->
      Btree.put bt (Printf.sprintf "block%08d" b.Block.seq) (Block.serialize b));
  Btree.flush bt;
  Btree.close bt;
  let bt = Btree.open_file path in
  Printf.printf "persisted %d blocks to %s (%d pages, tree height %d)\n" (Btree.count bt) path
    (Btree.stats bt).Btree.pages_allocated (Btree.stats bt).Btree.height;
  (match Btree.verify bt with
  | Ok () -> print_endline "on-disk block store verifies"
  | Error e -> failwith e);
  let last = Rdb_chain.Ledger.last (Rt.ledger rt 0) in
  (match Btree.get bt (Printf.sprintf "block%08d" last.Block.seq) with
  | Some serialized -> assert (String.equal serialized (Block.serialize last))
  | None -> failwith "last block missing from disk");
  Btree.close bt;
  Sys.remove path;
  print_endline "kv_ledger: OK"
